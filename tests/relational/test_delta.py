"""Signed-multiset deltas."""

import pytest

from repro.relational.delta import Delta
from repro.relational.errors import ArityError
from repro.relational.schema import RelationSchema

R = RelationSchema.of("R", ["a", "b"])


class TestConstruction:
    def test_insertion(self):
        delta = Delta.insertion(R, [("x", "y"), ("x", "y"), ("p", "q")])
        assert delta.count(("x", "y")) == 2
        assert delta.count(("p", "q")) == 1

    def test_deletion(self):
        delta = Delta.deletion(R, [("x", "y")])
        assert delta.count(("x", "y")) == -1

    def test_wrong_arity_rejected(self):
        delta = Delta(R)
        with pytest.raises(ArityError):
            delta.add(("only-one",))


class TestAccumulation:
    def test_cancellation_removes_entry(self):
        delta = Delta(R)
        delta.add(("x", "y"), 2)
        delta.add(("x", "y"), -2)
        assert delta.is_empty()
        assert len(delta) == 0

    def test_zero_count_noop(self):
        delta = Delta(R)
        delta.add(("x", "y"), 0)
        assert delta.is_empty()

    def test_merge(self):
        left = Delta.insertion(R, [("a", "b")])
        right = Delta.deletion(R, [("a", "b"), ("c", "d")])
        left.merge(right)
        assert left.count(("a", "b")) == 0
        assert left.count(("c", "d")) == -1

    def test_merge_arity_mismatch_rejected(self):
        other = Delta(RelationSchema.of("S", ["a"]))
        with pytest.raises(ArityError):
            Delta(R).merge(other)


class TestParts:
    def test_insertions_and_deletions_split(self):
        delta = Delta(R)
        delta.add(("i", "i"), 3)
        delta.add(("d", "d"), -2)
        assert delta.insertions.count(("i", "i")) == 3
        assert delta.insertions.count(("d", "d")) == 0
        assert delta.deletions.count(("d", "d")) == 2  # positive counts

    def test_negated(self):
        delta = Delta(R)
        delta.add(("x", "y"), 2)
        flipped = delta.negated()
        assert flipped.count(("x", "y")) == -2
        assert delta.count(("x", "y")) == 2  # original intact

    def test_negated_roundtrip_cancels(self):
        delta = Delta.insertion(R, [("x", "y")])
        delta.merge(delta.negated())
        assert delta.is_empty()

    def test_scaled(self):
        delta = Delta.insertion(R, [("x", "y")])
        assert delta.scaled(3).count(("x", "y")) == 3
        assert delta.scaled(-1).count(("x", "y")) == -1
        assert delta.scaled(0).is_empty()

    def test_copy_is_independent(self):
        delta = Delta.insertion(R, [("x", "y")])
        duplicate = delta.copy()
        duplicate.add(("x", "y"))
        assert delta.count(("x", "y")) == 1
        assert duplicate.count(("x", "y")) == 2


class TestInspection:
    def test_rows_repeats_by_abs_count(self):
        delta = Delta(R)
        delta.add(("x", "y"), 2)
        delta.add(("d", "d"), -1)
        rows = list(delta.rows())
        assert rows.count(("x", "y")) == 2
        assert rows.count(("d", "d")) == 1

    def test_net_size(self):
        delta = Delta(R)
        delta.add(("x", "y"), 2)
        delta.add(("d", "d"), -3)
        assert delta.net_size() == 5

    def test_equality_is_by_net_effect(self):
        left = Delta(R)
        left.add(("x", "y"), 1)
        left.add(("x", "y"), 1)
        right = Delta(R)
        right.add(("x", "y"), 2)
        assert left == right

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Delta(R))

    def test_repr_mentions_schema(self):
        assert "R" in repr(Delta(R))
