"""The SQL front-end: parsing and round-tripping SPJ queries."""

import pytest

from repro.relational.errors import QueryError
from repro.relational.predicate import (
    AttrComparison,
    Comparison,
    InPredicate,
    attr,
)
from repro.relational.sql import parse_query, parse_view


class TestParseView:
    def test_paper_query_1(self):
        name, query = parse_view(
            """
            CREATE VIEW BookInfo AS
            SELECT S.Store, I.Book, I.Author, I.Price,
                   C.Publisher, C.Category, C.Review
            FROM retailer.Store S, retailer.Item I, library.Catalog C
            WHERE S.SID = I.SID AND I.Book = C.Title
            """
        )
        assert name == "BookInfo"
        assert query.aliases == ("S", "I", "C")
        assert query.relation_ref("S").source == "retailer"
        assert query.relation_ref("C").relation == "Catalog"
        assert len(query.joins) == 2
        assert len(query.projection) == 7

    def test_roundtrip_through_ast_sql(self):
        _name, query = parse_view(
            "CREATE VIEW V AS SELECT R.a FROM s1.R R WHERE R.a = 'x'"
        )
        # the AST renders plain SQL (without source qualifiers)
        assert query.sql() == "SELECT R.a FROM R WHERE R.a = 'x'"

    def test_missing_as_rejected(self):
        with pytest.raises(QueryError):
            parse_view("CREATE VIEW V SELECT R.a FROM s.R")


class TestParseQuery:
    def test_default_alias_is_relation_name(self):
        query = parse_query("SELECT Item.Book FROM retailer.Item")
        assert query.aliases == ("Item",)

    def test_string_literal_with_quote(self):
        query = parse_query(
            "SELECT I.Book FROM s.Item I WHERE I.Book = 'O''Hara'"
        )
        assert query.selection == Comparison(attr("I", "Book"), "=", "O'Hara")

    def test_numeric_literals(self):
        query = parse_query(
            "SELECT I.a FROM s.Item I WHERE I.a > 5 AND I.b <= 2.5"
        )
        comparisons = list(query.selection.children)  # type: ignore[attr-defined]
        assert comparisons[0] == Comparison(attr("I", "a"), ">", 5)
        assert comparisons[1] == Comparison(attr("I", "b"), "<=", 2.5)

    def test_boolean_literal(self):
        query = parse_query("SELECT I.a FROM s.Item I WHERE I.flag = TRUE")
        assert query.selection == Comparison(attr("I", "flag"), "=", True)

    def test_in_list(self):
        query = parse_query(
            "SELECT I.a FROM s.Item I WHERE I.k IN (1, 2, 3)"
        )
        assert query.selection == InPredicate(
            attr("I", "k"), frozenset({1, 2, 3})
        )

    def test_equality_between_attrs_is_join(self):
        query = parse_query(
            "SELECT R.a FROM s.R R, s.T T WHERE R.k = T.k"
        )
        assert len(query.joins) == 1
        assert query.selection.references() == frozenset()

    def test_inequality_between_attrs_is_predicate(self):
        query = parse_query(
            "SELECT R.a FROM s.R R, s.T T WHERE R.k = T.k AND R.a != T.x"
        )
        assert query.selection == AttrComparison(
            attr("R", "a"), "!=", attr("T", "x")
        )

    def test_not_equals_spelling(self):
        query = parse_query(
            "SELECT R.a FROM s.R R WHERE R.a <> 'x'"
        )
        assert query.selection == Comparison(attr("R", "a"), "!=", "x")

    def test_unqualified_projection(self):
        query = parse_query("SELECT Book FROM s.Item I")
        assert query.projection == (attr("Book"),)

    def test_case_insensitive_keywords(self):
        query = parse_query("select I.a from s.Item I where I.a = 1")
        assert query.selection == Comparison(attr("I", "a"), "=", 1)


class TestErrors:
    def test_trailing_tokens_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT I.a FROM s.Item I garbage garbage")

    def test_unsourced_relation_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT I.a FROM Item I")

    def test_bad_token_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT I.a FROM s.Item I WHERE I.a = ;")

    def test_truncated_input_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT I.a FROM s.Item I WHERE")

    def test_missing_literal_in_list(self):
        with pytest.raises(QueryError):
            parse_query("SELECT I.a FROM s.Item I WHERE I.a IN (SELECT)")


class TestExecutableParsedQueries:
    def test_parsed_view_runs_against_sources(self):
        from repro.relational.executor import execute
        from repro.relational.schema import RelationSchema
        from repro.relational.table import Table
        from repro.relational.types import AttributeType

        query = parse_query(
            "SELECT R.a, T.x FROM s.R R, s.T T "
            "WHERE R.k = T.k AND T.x != 'skip'"
        )
        r_schema = RelationSchema.of("R", [("k", AttributeType.INT), "a"])
        t_schema = RelationSchema.of("T", [("k", AttributeType.INT), "x"])
        tables = {
            "R": Table(r_schema, [(1, "a1"), (2, "a2")]),
            "T": Table(t_schema, [(1, "x1"), (2, "skip")]),
        }
        result = execute(query, tables)
        assert result.rows() == [("a1", "x1")]
