"""Relation schemas: construction, lookups, evolution."""

import pytest

from repro.relational.errors import (
    DuplicateAttributeError,
    SchemaError,
    UnknownAttributeError,
)
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType


@pytest.fixture
def item() -> RelationSchema:
    return RelationSchema.of(
        "Item",
        [
            ("SID", AttributeType.INT),
            "Book",
            "Author",
            ("Price", AttributeType.FLOAT),
        ],
    )


class TestConstruction:
    def test_of_accepts_mixed_forms(self, item):
        assert item.attribute_names == ("SID", "Book", "Author", "Price")
        assert item.attribute("SID").type is AttributeType.INT
        assert item.attribute("Book").type is AttributeType.STRING

    def test_of_accepts_attribute_objects(self):
        schema = RelationSchema.of(
            "R", [Attribute("a", AttributeType.BOOL)]
        )
        assert schema.attribute("a").type is AttributeType.BOOL

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DuplicateAttributeError):
            RelationSchema.of("R", ["a", "a"])

    def test_invalid_relation_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema.of("bad name", ["a"])

    def test_invalid_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema.of("R", ["bad-attr"])

    def test_arity(self, item):
        assert item.arity == 4

    def test_contains(self, item):
        assert "Book" in item
        assert "Title" not in item

    def test_iteration_order(self, item):
        assert [a.name for a in item] == ["SID", "Book", "Author", "Price"]


class TestLookups:
    def test_index_of(self, item):
        assert item.index_of("Author") == 2

    def test_index_of_unknown_raises(self, item):
        with pytest.raises(UnknownAttributeError) as excinfo:
            item.index_of("Title")
        assert excinfo.value.attribute == "Title"
        assert excinfo.value.relation == "Item"

    def test_attribute_lookup(self, item):
        assert item.attribute("Price").type is AttributeType.FLOAT


class TestEvolution:
    def test_renamed_relation(self, item):
        renamed = item.renamed("Items2")
        assert renamed.name == "Items2"
        assert renamed.attributes == item.attributes
        assert item.name == "Item"  # original untouched

    def test_rename_attribute(self, item):
        renamed = item.rename_attribute("Book", "Title")
        assert renamed.attribute_names == ("SID", "Title", "Author", "Price")
        assert renamed.attribute("Title").type is AttributeType.STRING

    def test_rename_attribute_unknown_raises(self, item):
        with pytest.raises(UnknownAttributeError):
            item.rename_attribute("Nope", "X")

    def test_drop_attribute(self, item):
        dropped = item.drop_attribute("Author")
        assert dropped.attribute_names == ("SID", "Book", "Price")

    def test_drop_last_attribute_rejected(self):
        single = RelationSchema.of("R", ["only"])
        with pytest.raises(SchemaError):
            single.drop_attribute("only")

    def test_add_attribute(self, item):
        extended = item.add_attribute(Attribute("Year", AttributeType.INT))
        assert extended.attribute_names[-1] == "Year"
        assert extended.arity == 5

    def test_add_duplicate_rejected(self, item):
        with pytest.raises(DuplicateAttributeError):
            item.add_attribute(Attribute("Book"))

    def test_project(self, item):
        projected = item.project(["Price", "SID"])
        assert projected.attribute_names == ("Price", "SID")
        assert projected.attribute("SID").type is AttributeType.INT

    def test_project_unknown_raises(self, item):
        with pytest.raises(UnknownAttributeError):
            item.project(["Missing"])


class TestRendering:
    def test_sql(self, item):
        assert item.sql() == (
            "Item(SID INTEGER, Book VARCHAR, Author VARCHAR, Price REAL)"
        )

    def test_attribute_renamed_helper(self):
        attribute = Attribute("a", AttributeType.INT)
        assert attribute.renamed("b") == Attribute("b", AttributeType.INT)
