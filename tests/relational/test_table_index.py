"""Incremental hash indexes on tables and the executor probe path."""

from repro.relational.executor import execute
from repro.relational.predicate import Comparison, InPredicate, attr, conjunction
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

R = RelationSchema.of("R", [("k", AttributeType.INT), "v"])


def big_table(n=200) -> Table:
    return Table(R, [(i, f"v{i % 7}") for i in range(n)])


class TestProbe:
    def test_probe_finds_rows(self):
        table = big_table()
        hits = dict(table.probe("k", [5, 7, 999]))
        assert hits == {(5, "v5"): 1, (7, "v0"): 1}
        assert table.has_index("k")

    def test_index_lazy(self):
        table = big_table()
        assert not table.has_index("k")

    def test_index_tracks_inserts(self):
        table = big_table()
        list(table.probe("k", [1]))  # build
        table.insert((1000, "new"))
        assert dict(table.probe("k", [1000])) == {(1000, "new"): 1}

    def test_index_tracks_deletes(self):
        table = big_table()
        list(table.probe("k", [1]))
        table.delete((3, "v3"))
        assert dict(table.probe("k", [3])) == {}

    def test_index_tracks_multiplicity(self):
        table = big_table()
        list(table.probe("k", [4]))
        table.insert((4, "v4"), 2)
        assert dict(table.probe("k", [4])) == {(4, "v4"): 3}
        table.delete((4, "v4"), 2)
        assert dict(table.probe("k", [4])) == {(4, "v4"): 1}

    def test_rename_attribute_migrates_index(self):
        table = big_table()
        list(table.probe("k", [1]))
        table.rename_attribute("k", "key")
        assert table.has_index("key")
        assert dict(table.probe("key", [1])) == {(1, "v1"): 1}

    def test_drop_attribute_discards_indexes(self):
        table = big_table()
        list(table.probe("v", ["v1"]))
        table.drop_attribute("v")
        assert not table.has_index("v")

    def test_clear_discards_indexes(self):
        table = big_table()
        list(table.probe("k", [1]))
        table.clear()
        assert not table.has_index("k")
        assert dict(table.probe("k", [1])) == {}

    def test_copy_has_no_stale_index(self):
        table = big_table()
        list(table.probe("k", [1]))
        duplicate = table.copy()
        duplicate.insert((5000, "x"))
        assert dict(duplicate.probe("k", [5000])) == {(5000, "x"): 1}


class TestExecutorProbePath:
    def query(self, selection) -> SPJQuery:
        return SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "k"), attr("R", "v")),
            selection=selection,
        )

    def test_in_list_uses_index(self):
        table = big_table(500)
        query = self.query(InPredicate(attr("R", "k"), frozenset({1, 2})))
        result = execute(query, {"R": table})
        assert sorted(result.rows()) == [(1, "v1"), (2, "v2")]
        assert table.has_index("k")

    def test_residual_conjuncts_still_applied(self):
        table = big_table(500)
        query = self.query(
            conjunction(
                [
                    InPredicate(attr("R", "k"), frozenset({1, 2, 3})),
                    Comparison(attr("R", "v"), "=", "v2"),
                ]
            )
        )
        result = execute(query, {"R": table})
        assert result.rows() == [(2, "v2")]

    def test_large_in_list_falls_back_to_scan(self):
        table = big_table(10)
        query = self.query(
            InPredicate(attr("R", "k"), frozenset(range(9)))
        )
        result = execute(query, {"R": table})
        assert len(result) == 9
        assert not table.has_index("k")  # scan path: no index built

    def test_probe_result_matches_scan_result(self):
        table = big_table(500)
        query = self.query(
            InPredicate(attr("R", "k"), frozenset(range(0, 50, 5)))
        )
        probed = execute(query, {"R": table})
        # force the scan path on an index-free copy with a big IN list
        fresh = table.copy()
        scanned = execute(
            self.query(
                InPredicate(attr("R", "k"), frozenset(range(0, 50, 5)))
            ),
            {"R": fresh},
        )
        assert probed == scanned
