"""SPJ query AST: validation, introspection, structural rewrites."""

import pytest

from repro.relational.errors import QueryError
from repro.relational.predicate import Comparison, attr, conjunction
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema


def two_way() -> SPJQuery:
    return SPJQuery(
        relations=(
            RelationRef("s1", "R", "R"),
            RelationRef("s2", "T", "T"),
        ),
        projection=(attr("R", "a"), attr("T", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
        selection=Comparison(attr("R", "a"), ">", 0),
    )


class TestValidation:
    def test_needs_relations(self):
        with pytest.raises(QueryError):
            SPJQuery(relations=(), projection=(attr("R", "a"),))

    def test_duplicate_alias_rejected(self):
        with pytest.raises(QueryError):
            SPJQuery(
                relations=(
                    RelationRef("s", "R", "X"),
                    RelationRef("s", "T", "X"),
                ),
                projection=(attr("X", "a"),),
            )

    def test_unknown_alias_in_projection_rejected(self):
        with pytest.raises(QueryError):
            SPJQuery(
                relations=(RelationRef("s", "R", "R"),),
                projection=(attr("Z", "a"),),
            )

    def test_join_requires_qualified_refs(self):
        with pytest.raises(QueryError):
            JoinCondition(attr("a"), attr("T", "k"))


class TestIntrospection:
    def test_aliases(self):
        assert two_way().aliases == ("R", "T")

    def test_sources(self):
        assert two_way().sources() == frozenset({"s1", "s2"})

    def test_relations_of_source(self):
        refs = two_way().relations_of_source("s2")
        assert [ref.relation for ref in refs] == ["T"]

    def test_relation_ref_unknown_raises(self):
        with pytest.raises(QueryError):
            two_way().relation_ref("Z")

    def test_all_attribute_refs(self):
        refs = two_way().all_attribute_refs()
        assert attr("R", "k") in refs
        assert attr("T", "x") in refs
        assert attr("R", "a") in refs

    def test_references_relation(self):
        query = two_way()
        assert query.references_relation("s1", "R")
        assert not query.references_relation("s1", "T")
        assert not query.references_relation("s9", "R")

    def test_references_attribute(self):
        query = two_way()
        assert query.references_attribute("s1", "R", "a")
        assert query.references_attribute("s1", "R", "k")  # via the join
        assert not query.references_attribute("s1", "R", "zz")
        assert not query.references_attribute("s2", "R", "a")

    def test_joins_touching(self):
        assert len(two_way().joins_touching("R")) == 1

    def test_join_condition_helpers(self):
        join = two_way().joins[0]
        assert join.touches("R") and join.touches("T")
        assert join.attr_of("R") == attr("R", "k")
        assert join.other_side("R") == attr("T", "k")
        with pytest.raises(QueryError):
            join.attr_of("Z")
        with pytest.raises(QueryError):
            join.other_side("Z")


class TestRewrites:
    def test_with_relation_renamed(self):
        renamed = two_way().with_relation_renamed("s1", "R", "R2")
        assert renamed.relation_ref("R").relation == "R2"
        # alias unchanged: attribute refs survive
        assert attr("R", "a") in renamed.projection

    def test_with_relation_replaced_keeps_alias(self):
        replacement = RelationRef("s3", "NewR", "R")
        replaced = two_way().with_relation_replaced("R", replacement)
        assert replaced.relation_ref("R").source == "s3"

    def test_with_relation_replaced_alias_mismatch_rejected(self):
        with pytest.raises(QueryError):
            two_way().with_relation_replaced(
                "R", RelationRef("s3", "NewR", "Other")
            )

    def test_with_attribute_renamed(self):
        renamed = two_way().with_attribute_renamed("R", "a", "a2")
        assert attr("R", "a2") in renamed.projection
        assert renamed.selection == Comparison(attr("R", "a2"), ">", 0)

    def test_without_projection_attribute(self):
        pruned = two_way().without_projection_attribute(attr("T", "x"))
        assert pruned.projection == (attr("R", "a"),)

    def test_without_last_projection_attribute_rejected(self):
        query = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "a"),),
        )
        with pytest.raises(QueryError):
            query.without_projection_attribute(attr("R", "a"))

    def test_without_relation(self):
        pruned = two_way().without_relation("T")
        assert pruned.aliases == ("R",)
        assert pruned.joins == ()
        assert pruned.projection == (attr("R", "a"),)
        # selection touching only R survives
        assert pruned.selection == Comparison(attr("R", "a"), ">", 0)

    def test_without_relation_prunes_its_selection(self):
        query = two_way().with_extra_selection(
            Comparison(attr("T", "x"), "=", "q")
        )
        pruned = query.without_relation("T")
        assert pruned.selection == Comparison(attr("R", "a"), ">", 0)

    def test_without_only_relation_rejected(self):
        query = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "a"),),
        )
        with pytest.raises(QueryError):
            query.without_relation("R")

    def test_without_relation_emptying_projection_rejected(self):
        query = SPJQuery(
            relations=(
                RelationRef("s1", "R", "R"),
                RelationRef("s2", "T", "T"),
            ),
            projection=(attr("T", "x"),),
            joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
        )
        with pytest.raises(QueryError):
            query.without_relation("T")

    def test_with_extra_selection(self):
        query = two_way().with_extra_selection(
            Comparison(attr("T", "x"), "=", "q")
        )
        assert len(query.selection.children) == 2  # type: ignore[attr-defined]

    def test_substituted(self):
        substituted = two_way().substituted(
            {attr("R", "a"): attr("R", "alpha")}
        )
        assert attr("R", "alpha") in substituted.projection


class TestValidationAgainstSchemas:
    def test_valid(self):
        schemas = {
            "R": RelationSchema.of("R", ["a", "k"]),
            "T": RelationSchema.of("T", ["x", "k"]),
        }
        two_way().validate_against(schemas)  # no raise

    def test_missing_attribute(self):
        schemas = {
            "R": RelationSchema.of("R", ["a"]),  # no k
            "T": RelationSchema.of("T", ["x", "k"]),
        }
        with pytest.raises(Exception):
            two_way().validate_against(schemas)

    def test_missing_alias_binding(self):
        with pytest.raises(QueryError):
            two_way().validate_against({})


class TestRendering:
    def test_sql(self):
        sql = two_way().sql()
        assert sql == (
            "SELECT R.a, T.x FROM R, T WHERE R.k = T.k AND R.a > 0"
        )

    def test_sql_with_alias(self):
        query = SPJQuery(
            relations=(RelationRef("s", "Store", "S"),),
            projection=(attr("S", "a"),),
        )
        assert "Store S" in query.sql()

    def test_sql_no_where(self):
        query = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "a"),),
        )
        assert "WHERE" not in query.sql()
