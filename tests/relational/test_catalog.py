"""Per-source catalogs."""

import pytest

from repro.relational.catalog import Catalog
from repro.relational.errors import (
    DuplicateRelationError,
    UnknownRelationError,
)
from repro.relational.schema import RelationSchema
from repro.relational.table import Table

R = RelationSchema.of("R", ["a", "b"])
T = RelationSchema.of("T", ["x"])


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog("src1")
    catalog.create(R).insert(("1", "2"))
    return catalog


class TestDDL:
    def test_create_and_lookup(self, catalog):
        assert catalog.schema("R") is catalog.table("R").schema
        assert "R" in catalog
        assert len(catalog) == 1

    def test_create_duplicate_rejected(self, catalog):
        with pytest.raises(DuplicateRelationError):
            catalog.create(R)

    def test_add_table(self, catalog):
        catalog.add_table(Table(T))
        assert "T" in catalog

    def test_add_table_duplicate_rejected(self, catalog):
        with pytest.raises(DuplicateRelationError):
            catalog.add_table(Table(R))

    def test_drop_returns_table(self, catalog):
        dropped = catalog.drop("R")
        assert ("1", "2") in dropped
        assert "R" not in catalog

    def test_drop_unknown_raises(self, catalog):
        with pytest.raises(UnknownRelationError) as excinfo:
            catalog.drop("Z")
        assert excinfo.value.source == "src1"

    def test_rename(self, catalog):
        catalog.rename("R", "R2")
        assert "R2" in catalog
        assert "R" not in catalog
        assert catalog.schema("R2").name == "R2"

    def test_rename_onto_existing_rejected(self, catalog):
        catalog.create(T)
        with pytest.raises(DuplicateRelationError):
            catalog.rename("R", "T")


class TestSnapshots:
    def test_snapshot_is_deep(self, catalog):
        snapshot = catalog.snapshot()
        catalog.table("R").insert(("9", "9"))
        assert ("9", "9") not in snapshot.table("R")

    def test_relation_names(self, catalog):
        catalog.create(T)
        assert catalog.relation_names == ("R", "T")

    def test_iteration(self, catalog):
        assert [table.schema.name for table in catalog] == ["R"]
