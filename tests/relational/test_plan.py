"""Compiled plan cache, row interning, and index-maintenance mechanics."""

from collections import Counter

import pytest

from repro.relational import rows as rowpool
from repro.relational.errors import DataError
from repro.relational.plan import (
    PLAN_CACHE,
    PlanCache,
    clear_plan_cache,
    compile_plan,
    execute_compiled,
    plan_cache_stats,
)
from repro.relational.predicate import Comparison, InPredicate, attr
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

R = RelationSchema.of("R", [("k", AttributeType.INT), "a"])
S = RelationSchema.of("S", [("k", AttributeType.INT), "c"])


def two_way_query(threshold: int = 0) -> SPJQuery:
    return SPJQuery(
        relations=(RelationRef("s", "R", "R"), RelationRef("s", "S", "S")),
        projection=(attr("R", "a"), attr("S", "c")),
        joins=(JoinCondition(attr("R", "k"), attr("S", "k")),),
        selection=Comparison(attr("R", "k"), ">=", threshold),
    )


def tables():
    return {
        "R": Table(R, [(1, "p"), (2, "q"), (2, "q")]),
        "S": Table(S, [(1, "x"), (2, "y")]),
    }


class TestPlanCache:
    def test_same_query_and_schemas_reuse_the_compiled_plan(self):
        clear_plan_cache()
        bound = tables()
        query = two_way_query()
        before = plan_cache_stats()
        execute_compiled(query, bound)
        first = dict(PLAN_CACHE._plans)
        execute_compiled(query, bound)
        stats = plan_cache_stats()
        assert stats["plans"] == 1
        assert stats["hits"] == before["hits"] + 1
        # identity, not just equality: the plan object is reused
        assert list(PLAN_CACHE._plans.values()) == list(first.values())

    def test_equal_schemas_share_plans_across_table_objects(self):
        clear_plan_cache()
        query = two_way_query()
        before = plan_cache_stats()
        execute_compiled(query, tables())
        execute_compiled(query, tables())  # fresh Table objects, same schemas
        stats = plan_cache_stats()
        assert stats["plans"] == 1
        assert stats["hits"] == before["hits"] + 1
        assert stats["misses"] == before["misses"] + 1

    def test_schema_change_compiles_a_fresh_plan(self):
        clear_plan_cache()
        bound = tables()
        query = two_way_query()
        before = execute_compiled(query, bound)
        assert sorted(before.rows()) == [("p", "x"), ("q", "y"), ("q", "y")]
        misses_before = plan_cache_stats()["misses"]
        epoch_before = bound["S"].schema_epoch
        bound["S"].rename_attribute("c", "c2")
        assert bound["S"].schema_epoch > epoch_before
        # the old plan keys on the old schema object — a new one compiles
        query2 = SPJQuery(
            relations=query.relations,
            projection=(attr("R", "a"), attr("S", "c2")),
            joins=query.joins,
            selection=query.selection,
        )
        after = execute_compiled(query2, bound)
        assert sorted(after.rows()) == sorted(before.rows())
        assert plan_cache_stats()["misses"] == misses_before + 1

    def test_stale_plan_never_served_after_schema_change(self):
        clear_plan_cache()
        bound = tables()
        query = two_way_query()
        execute_compiled(query, bound)
        bound["S"].drop_attribute("c")
        # same query object, changed schema: recompiles (cache miss) and
        # reports the dangling projection exactly like the naive oracle
        from repro.relational.errors import UnknownAttributeError
        from repro.relational.executor import execute_naive

        with pytest.raises(UnknownAttributeError):
            execute_compiled(query, bound)
        with pytest.raises(UnknownAttributeError):
            execute_naive(query, bound)

    def test_lru_bound_evicts_oldest(self):
        cache = PlanCache(max_plans=2)
        bound = tables()
        schemas = {alias: table.schema for alias, table in bound.items()}
        for threshold in range(4):
            cache.plan_for(two_way_query(threshold), bound)
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["evictions"] == 2
        assert stats["misses"] == 4
        # oldest (threshold=0) was evicted: fetching recompiles
        cache.plan_for(two_way_query(0), bound)
        assert cache.stats()["misses"] == 5
        del schemas

    def test_probe_path_used_for_small_in_lists(self):
        clear_plan_cache()
        big = Table(R, [(i % 50, "v") for i in range(200)])
        bound = {"R": big}
        query = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "k"), attr("R", "a")),
            selection=InPredicate(attr("R", "k"), frozenset({3})),
        )
        result = execute_compiled(query, bound)
        assert big.has_index("k")  # the compiled scan probed the index
        assert set(result.rows()) == {(3, "v")}
        assert result.count((3, "v")) == 4


class TestRowInterning:
    def setup_method(self):
        rowpool.clear_pool()

    def test_equal_rows_become_identical_objects(self):
        first = Table(R, [(1, "p")])
        second = Table(R, [(1, "p")])
        (row_a,) = first.rows()
        (row_b,) = second.rows()
        assert row_a is row_b

    def test_type_twins_are_never_substituted(self):
        F = RelationSchema.of("F", [("x", AttributeType.FLOAT)])
        I = RelationSchema.of("I", [("x", AttributeType.INT)])
        int_table = Table(I, [(1,)])
        float_table = Table(F, [(1.0,)])
        (int_row,) = int_table.rows()
        (float_row,) = float_table.rows()
        assert int_row == float_row  # Python: 1 == 1.0
        assert type(int_row[0]) is int
        assert type(float_row[0]) is float  # NOT the pooled int twin
        assert rowpool.pool_stats()["type_conflicts"] >= 1

    def test_pool_reset_keeps_correctness(self):
        rowpool.set_pool_capacity(4)
        try:
            table = Table(R, [(i, "w") for i in range(20)])
            assert sorted(table.rows()) == [(i, "w") for i in range(20)]
            assert rowpool.pool_stats()["resets"] >= 1
        finally:
            rowpool.set_pool_capacity(rowpool.DEFAULT_POOL_CAPACITY)
            rowpool.clear_pool()

    def test_interning_can_be_disabled(self):
        rowpool.set_interning(False)
        try:
            first = Table(R, [(7, "z")])
            second = Table(R, [(7, "z")])
            (row_a,) = first.rows()
            (row_b,) = second.rows()
            assert row_a == row_b
            assert row_a is not row_b
        finally:
            rowpool.set_interning(True)


class TestIndexMaintenance:
    def test_mutations_do_not_rebind_attribute_positions(self, monkeypatch):
        """insert/delete maintain indexes via the position stored at
        build time — ``schema.index_of`` must not run per row."""
        table = Table(R, [(i, "v") for i in range(10)])
        list(table.probe("k", {1}))  # build the index (one index_of)
        calls = []
        original = RelationSchema.index_of

        def counting(self, name):
            calls.append(name)
            return original(self, name)

        monkeypatch.setattr(RelationSchema, "index_of", counting)
        for i in range(10, 60):
            table.insert((i, "w"))
        for i in range(10, 30):
            table.delete((i, "w"))
        assert calls == []  # zero per-row resolutions
        assert {row for row, _count in table.probe("k", {42})} == {
            (42, "w")
        }

    def test_from_counts_adopts_counter(self):
        counts = Counter({(1, "p"): 2, (2, "q"): 1})
        table = Table.from_counts(R, counts)
        assert table.count((1, "p")) == 2
        assert len(table) == 3
        # the probe index built on an adopted bag answers correctly
        assert {row for row, _c in table.probe("k", {1})} == {(1, "p")}

    def test_from_counts_wraps_plain_dicts(self):
        table = Table.from_counts(R, {(5, "z"): 3})
        table.insert((5, "z"))  # Counter semantics must survive adoption
        assert table.count((5, "z")) == 4
        with pytest.raises(DataError):
            table.delete((5, "z"), 9)
