"""Hash-join executor: joins, selections, projection, bag counts."""

import pytest

from repro.relational.errors import (
    AmbiguousAttributeError,
    QueryError,
    UnknownAttributeError,
)
from repro.relational.executor import execute
from repro.relational.predicate import (
    AttrComparison,
    Comparison,
    InPredicate,
    attr,
    conjunction,
)
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

R = RelationSchema.of("R", [("k", AttributeType.INT), "a"])
T = RelationSchema.of("T", [("k", AttributeType.INT), "x"])
U = RelationSchema.of("U", [("j", AttributeType.INT), "y"])


def tables():
    return {
        "R": Table(R, [(1, "r1"), (2, "r2"), (2, "r2b")]),
        "T": Table(T, [(1, "t1"), (2, "t2"), (3, "t3")]),
    }


def join_query(projection=None, selection=None):
    return SPJQuery(
        relations=(
            RelationRef("s1", "R", "R"),
            RelationRef("s2", "T", "T"),
        ),
        projection=projection or (attr("R", "a"), attr("T", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
        selection=selection or conjunction([]),
    )


class TestJoins:
    def test_equi_join(self):
        result = execute(join_query(), tables())
        assert sorted(result.rows()) == [
            ("r1", "t1"),
            ("r2", "t2"),
            ("r2b", "t2"),
        ]

    def test_join_multiplicities_multiply(self):
        bound = tables()
        bound["R"].insert((1, "r1"))  # now 2 copies
        bound["T"].insert((1, "t1"))  # now 2 copies
        result = execute(join_query(), bound)
        assert result.count(("r1", "t1")) == 4

    def test_cartesian_product_without_joins(self):
        query = SPJQuery(
            relations=(
                RelationRef("s1", "R", "R"),
                RelationRef("s2", "T", "T"),
            ),
            projection=(attr("R", "a"), attr("T", "x")),
        )
        result = execute(query, tables())
        assert len(result) == 3 * 3

    def test_three_way_chain(self):
        query = SPJQuery(
            relations=(
                RelationRef("s1", "R", "R"),
                RelationRef("s2", "T", "T"),
                RelationRef("s3", "U", "U"),
            ),
            projection=(attr("R", "a"), attr("U", "y")),
            joins=(
                JoinCondition(attr("R", "k"), attr("T", "k")),
                JoinCondition(attr("T", "k"), attr("U", "j")),
            ),
        )
        bound = tables()
        bound["U"] = Table(U, [(2, "u2")])
        result = execute(query, bound)
        assert sorted(result.rows()) == [("r2", "u2"), ("r2b", "u2")]

    def test_cyclic_join_residual(self):
        # R.k = T.k and additionally R.k = U.j and T.k = U.j (a cycle);
        # the third condition becomes a residual filter.
        query = SPJQuery(
            relations=(
                RelationRef("s1", "R", "R"),
                RelationRef("s2", "T", "T"),
                RelationRef("s3", "U", "U"),
            ),
            projection=(attr("R", "a"),),
            joins=(
                JoinCondition(attr("R", "k"), attr("T", "k")),
                JoinCondition(attr("R", "k"), attr("U", "j")),
                JoinCondition(attr("T", "k"), attr("U", "j")),
            ),
        )
        bound = tables()
        bound["U"] = Table(U, [(1, "u1"), (9, "u9")])
        result = execute(query, bound)
        assert result.rows() == [("r1",)]


class TestSelections:
    def test_single_alias_pushdown(self):
        result = execute(
            join_query(selection=Comparison(attr("R", "a"), "=", "r1")),
            tables(),
        )
        assert result.rows() == [("r1", "t1")]

    def test_cross_alias_residual(self):
        selection = AttrComparison(attr("R", "a"), "!=", attr("T", "x"))
        result = execute(join_query(selection=selection), tables())
        assert len(result) == 3  # all pairs differ

    def test_in_predicate(self):
        selection = InPredicate(attr("R", "k"), frozenset({2}))
        result = execute(join_query(selection=selection), tables())
        assert sorted(result.rows()) == [("r2", "t2"), ("r2b", "t2")]


class TestProjection:
    def test_result_schema_names(self):
        result = execute(join_query(), tables())
        assert result.schema.attribute_names == ("a", "x")

    def test_collision_qualifies_names(self):
        query = join_query(projection=(attr("R", "k"), attr("T", "k")))
        result = execute(query, tables())
        assert result.schema.attribute_names == ("R_k", "T_k")

    def test_unqualified_projection_resolves(self):
        query = join_query(projection=(attr("a"), attr("x")))
        result = execute(query, tables())
        assert sorted(result.rows()) == [
            ("r1", "t1"),
            ("r2", "t2"),
            ("r2b", "t2"),
        ]

    def test_ambiguous_unqualified_raises(self):
        query = join_query(projection=(attr("k"),))
        with pytest.raises(AmbiguousAttributeError):
            execute(query, tables())

    def test_unknown_attribute_raises(self):
        query = join_query(projection=(attr("R", "zz"), attr("T", "x")))
        with pytest.raises(UnknownAttributeError):
            execute(query, tables())

    def test_duplicate_rows_preserved(self):
        query = join_query(projection=(attr("T", "x"), attr("T", "x")))
        result = execute(query, tables())
        assert result.count(("t2", "t2")) == 2  # two R rows with k=2


class TestErrors:
    def test_unbound_alias_rejected(self):
        with pytest.raises(QueryError):
            execute(join_query(), {"R": tables()["R"]})

    def test_single_relation_scan(self):
        query = SPJQuery(
            relations=(RelationRef("s1", "R", "R"),),
            projection=(attr("R", "a"),),
            selection=Comparison(attr("R", "k"), ">", 1),
        )
        result = execute(query, {"R": tables()["R"]})
        assert sorted(result.rows()) == [("r2",), ("r2b",)]


class TestNegationResidual:
    def test_negation_as_residual_filter(self):
        from repro.relational.predicate import AttrComparison, Negation

        bound = tables()
        query = SPJQuery(
            relations=(
                RelationRef("s1", "R", "R"),
                RelationRef("s2", "T", "T"),
            ),
            projection=(attr("R", "a"), attr("T", "x")),
            joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
            selection=Negation(
                AttrComparison(attr("R", "a"), "=", attr("T", "x"))
            ),
        )
        result = execute(query, bound)
        assert len(result) == 3  # all joined pairs differ in a vs x

    def test_negation_pushdown_single_alias(self):
        from repro.relational.predicate import Negation

        query = SPJQuery(
            relations=(RelationRef("s1", "R", "R"),),
            projection=(attr("R", "a"),),
            selection=Negation(Comparison(attr("R", "k"), "=", 1)),
        )
        result = execute(query, {"R": tables()["R"]})
        assert sorted(result.rows()) == [("r2",), ("r2b",)]
