"""Predicate evaluation, substitution and rendering."""

import pytest

from repro.relational.errors import QueryError
from repro.relational.predicate import (
    TRUE,
    AttrComparison,
    AttrRef,
    Comparison,
    Conjunction,
    InPredicate,
    Negation,
    TruePredicate,
    attr,
    conjunction,
)


def binding_from(values: dict):
    def binding(ref: AttrRef):
        return values[ref]

    return binding


A = attr("R", "a")
B = attr("R", "b")
C = attr("S", "c")


class TestAttrRef:
    def test_qualified(self):
        assert A.qualified() == "R.a"
        assert attr("a").qualified() == "a"

    def test_with_relation(self):
        assert attr("a").with_relation("R") == A

    def test_renamed(self):
        assert A.renamed("z") == attr("R", "z")

    def test_str(self):
        assert str(A) == "R.a"


class TestComparison:
    def test_operators(self):
        binding = binding_from({A: 5})
        assert Comparison(A, "=", 5).evaluate(binding)
        assert Comparison(A, "!=", 4).evaluate(binding)
        assert Comparison(A, "<", 6).evaluate(binding)
        assert Comparison(A, "<=", 5).evaluate(binding)
        assert Comparison(A, ">", 4).evaluate(binding)
        assert Comparison(A, ">=", 5).evaluate(binding)
        assert not Comparison(A, "=", 6).evaluate(binding)

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison(A, "~", 5)

    def test_null_compares_false(self):
        binding = binding_from({A: None})
        assert not Comparison(A, "=", None).evaluate(binding)
        assert not Comparison(A, "=", 5).evaluate(binding)

    def test_references(self):
        assert Comparison(A, "=", 1).references() == frozenset({A})

    def test_substituted(self):
        substituted = Comparison(A, "=", 1).substituted({A: C})
        assert substituted == Comparison(C, "=", 1)

    def test_sql_quotes_strings(self):
        assert Comparison(A, "=", "o'hara").sql() == "R.a = 'o''hara'"

    def test_sql_renders_numbers(self):
        assert Comparison(A, ">", 5).sql() == "R.a > 5"


class TestAttrComparison:
    def test_evaluate(self):
        binding = binding_from({A: 1, C: 1})
        assert AttrComparison(A, "=", C).evaluate(binding)
        assert not AttrComparison(A, "!=", C).evaluate(binding)

    def test_null_operand_false(self):
        binding = binding_from({A: None, C: 1})
        assert not AttrComparison(A, "=", C).evaluate(binding)

    def test_references_both_sides(self):
        assert AttrComparison(A, "=", C).references() == frozenset({A, C})

    def test_substituted_both_sides(self):
        substituted = AttrComparison(A, "=", C).substituted({A: B, C: B})
        assert substituted == AttrComparison(B, "=", B)

    def test_sql(self):
        assert AttrComparison(A, "=", C).sql() == "R.a = S.c"


class TestInPredicate:
    def test_evaluate(self):
        predicate = InPredicate(A, frozenset({1, 2}))
        assert predicate.evaluate(binding_from({A: 1}))
        assert not predicate.evaluate(binding_from({A: 3}))

    def test_sql_lists_values(self):
        sql = InPredicate(A, frozenset({2, 1})).sql()
        assert sql.startswith("R.a IN (")
        assert "1" in sql and "2" in sql

    def test_substituted(self):
        predicate = InPredicate(A, frozenset({1}))
        assert predicate.substituted({A: C}).attr == C


class TestCombinators:
    def test_conjunction_evaluates_all(self):
        predicate = conjunction(
            [Comparison(A, ">", 0), Comparison(A, "<", 10)]
        )
        assert predicate.evaluate(binding_from({A: 5}))
        assert not predicate.evaluate(binding_from({A: 50}))

    def test_conjunction_flattens(self):
        inner = conjunction([Comparison(A, ">", 0), Comparison(B, ">", 0)])
        outer = conjunction([inner, Comparison(C, ">", 0)])
        assert isinstance(outer, Conjunction)
        assert len(outer.children) == 3

    def test_conjunction_drops_true(self):
        predicate = conjunction([TRUE, Comparison(A, "=", 1)])
        assert predicate == Comparison(A, "=", 1)

    def test_empty_conjunction_is_true(self):
        assert conjunction([]) is TRUE
        assert conjunction([TRUE, TRUE]) is TRUE

    def test_and_operator(self):
        combined = Comparison(A, "=", 1) & Comparison(B, "=", 2)
        assert isinstance(combined, Conjunction)

    def test_negation(self):
        predicate = Negation(Comparison(A, "=", 1))
        assert not predicate.evaluate(binding_from({A: 1}))
        assert predicate.evaluate(binding_from({A: 2}))
        assert predicate.references() == frozenset({A})
        assert predicate.sql() == "NOT (R.a = 1)"

    def test_negation_substituted(self):
        negation = Negation(Comparison(A, "=", 1)).substituted({A: C})
        assert negation == Negation(Comparison(C, "=", 1))

    def test_true_predicate(self):
        assert TRUE.evaluate(binding_from({}))
        assert TRUE.references() == frozenset()
        assert TRUE.substituted({A: C}) is TRUE
        assert TRUE.sql() == "TRUE"
        assert isinstance(TRUE, TruePredicate)

    def test_conjunction_references_union(self):
        predicate = conjunction(
            [Comparison(A, "=", 1), Comparison(C, "=", 2)]
        )
        assert predicate.references() == frozenset({A, C})

    def test_conjunction_sql(self):
        predicate = conjunction(
            [Comparison(A, "=", 1), Comparison(C, "=", 2)]
        )
        assert predicate.sql() == "R.a = 1 AND S.c = 2"
