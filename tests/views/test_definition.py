"""View definitions: versioning, SQL, result schema derivation."""

import pytest

from repro.relational.types import AttributeType
from repro.views.definition import ViewDefinition
from tests.conftest import bookinfo_query, build_bookstore


def test_rewritten_bumps_version():
    view = ViewDefinition("BookInfo", bookinfo_query())
    query = view.query.with_relation_renamed("retailer", "Item", "Item2")
    rewritten = view.rewritten(query)
    assert rewritten.version == 2
    assert view.version == 1
    assert rewritten.name == "BookInfo"


def test_sql_renders_create_view():
    view = ViewDefinition("BookInfo", bookinfo_query())
    assert view.sql().startswith("CREATE VIEW BookInfo AS SELECT")
    assert "Store S, Item I, Catalog C" in view.sql()


def test_result_schema_resolves_types():
    engine, manager = build_bookstore()
    schema = manager.view.result_schema(engine.sources)
    assert schema.name == "BookInfo"
    assert schema.attribute("Price").type is AttributeType.FLOAT
    assert schema.attribute_names == (
        "Store",
        "Book",
        "Author",
        "Price",
        "Publisher",
        "Category",
        "Review",
    )


def test_result_schema_qualifies_collisions():
    from repro.relational.predicate import attr
    from repro.relational.query import SPJQuery

    engine, manager = build_bookstore()
    query = manager.view.query
    collided = SPJQuery(
        relations=query.relations,
        projection=(attr("I", "Author"), attr("C", "Author")),
        joins=query.joins,
    )
    view = ViewDefinition("V", collided)
    schema = view.result_schema(engine.sources)
    assert schema.attribute_names == ("I_Author", "C_Author")


def test_repr_mentions_version():
    view = ViewDefinition("BookInfo", bookinfo_query())
    assert "v1" in repr(view)
