"""Multi-view maintenance over one shared UMQ."""

import pytest

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.relational.executor import execute
from repro.relational.predicate import Comparison, attr
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.sim.costs import CostModel
from repro.sim.engine import SimEngine
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    RenameRelation,
)
from repro.sources.source import DataSource
from repro.sources.workload import FixedUpdate, Workload
from repro.views.definition import ViewDefinition
from repro.views.multi import MultiViewManager
from tests.conftest import (
    CATALOG_SCHEMA,
    ITEM_SCHEMA,
    STORE_SCHEMA,
    bookinfo_query,
    bookstore_mkb,
)


def cheap_books_query() -> SPJQuery:
    """A second view over the same sources: cheap books only."""
    return SPJQuery(
        relations=(
            RelationRef("retailer", "Item", "I"),
            RelationRef("library", "Catalog", "C"),
        ),
        projection=(attr("I", "Book"), attr("I", "Price"), attr("C", "Publisher")),
        joins=(JoinCondition(attr("I", "Book"), attr("C", "Title")),),
        selection=Comparison(attr("I", "Price"), "<", 45.0),
    )


def build_multi(cost=None):
    engine = SimEngine(cost or CostModel.free())
    retailer = engine.add_source(DataSource("retailer"))
    library = engine.add_source(DataSource("library"))
    digest = engine.add_source(DataSource("digest"))
    retailer.create_relation(STORE_SCHEMA, [(1, "Amazon"), (2, "BN")])
    retailer.create_relation(
        ITEM_SCHEMA,
        [(1, "Databases", "Gray", 50.0), (2, "Compilers", "Aho", 40.0)],
    )
    library.create_relation(
        CATALOG_SCHEMA,
        [
            ("Databases", "Gray", "CS", "MIT", "good"),
            ("Compilers", "Aho", "CS", "AW", "classic"),
        ],
    )
    from tests.conftest import READER_SCHEMA

    digest.create_relation(READER_SCHEMA, [("Databases", "must read")])
    multi = MultiViewManager(
        engine,
        [
            ViewDefinition("BookInfo", bookinfo_query()),
            ViewDefinition("CheapBooks", cheap_books_query()),
        ],
        bookstore_mkb(),
    )
    return engine, multi


def expected_extent(engine, manager):
    tables = {}
    for ref in manager.view.query.relations:
        tables[ref.alias] = engine.sources[ref.source].catalog.table(
            ref.relation
        )
    return execute(manager.view.query, tables)


def assert_all_consistent(engine, multi):
    for manager in multi.managers:
        assert manager.mv.extent == expected_extent(engine, manager), (
            f"view {manager.view.name} inconsistent"
        )


class TestConstruction:
    def test_needs_views(self):
        engine = SimEngine(CostModel.free())
        with pytest.raises(ValueError):
            MultiViewManager(engine, [])

    def test_duplicate_names_rejected(self):
        engine = SimEngine(CostModel.free())
        engine.add_source(DataSource("retailer")).create_relation(
            ITEM_SCHEMA
        )
        view = ViewDefinition(
            "V",
            SPJQuery(
                relations=(RelationRef("retailer", "Item", "I"),),
                projection=(attr("I", "Book"),),
            ),
        )
        with pytest.raises(ValueError):
            MultiViewManager(engine, [view, view])

    def test_initial_load_both_views(self):
        engine, multi = build_multi()
        assert len(multi.manager_for("BookInfo").mv.extent) == 2
        assert len(multi.manager_for("CheapBooks").mv.extent) == 1

    def test_single_shared_umq(self):
        engine, multi = build_multi()
        engine.source("retailer").commit(
            DataUpdate.insert(ITEM_SCHEMA, [(1, "X", "Y", 1.0)]), at=0.0
        )
        assert len(multi.umq) == 1  # one message, not one per view

    def test_maintenance_queries_cover_all_views(self):
        _engine, multi = build_multi()
        assert len(multi.maintenance_queries) == 2

    def test_manager_for_unknown(self):
        _engine, multi = build_multi()
        with pytest.raises(KeyError):
            multi.manager_for("Nope")


class TestMaintenance:
    def test_du_refreshes_both_views(self):
        engine, multi = build_multi()
        workload = Workload()
        workload.add(
            0.0,
            "retailer",
            FixedUpdate(
                DataUpdate.insert(
                    ITEM_SCHEMA, [(1, "Databases", "Cheap", 10.0)]
                )
            ),
        )
        engine.schedule_workload(workload)
        DynoScheduler(multi, PESSIMISTIC).run()
        assert_all_consistent(engine, multi)
        # the cheap insert shows up in CheapBooks too
        cheap = multi.manager_for("CheapBooks").mv.extent
        assert any(10.0 in row for row in cheap.rows())
        assert engine.metrics.maintained_updates == 1  # counted once

    def test_sc_rewrites_only_affected_views(self):
        engine, multi = build_multi()
        workload = Workload()
        # Store is only in BookInfo; CheapBooks must stay untouched.
        workload.add(
            0.0,
            "retailer",
            FixedUpdate(RenameRelation("Store", "Shops")),
        )
        engine.schedule_workload(workload)
        DynoScheduler(multi, PESSIMISTIC).run()
        assert multi.view("BookInfo").version == 2
        assert multi.view("CheapBooks").version == 1
        assert_all_consistent(engine, multi)

    def test_sc_affecting_both_views(self):
        engine, multi = build_multi()
        workload = Workload()
        workload.add(
            0.0,
            "retailer",
            FixedUpdate(RenameRelation("Item", "Item2")),
        )
        engine.schedule_workload(workload)
        DynoScheduler(multi, PESSIMISTIC).run()
        assert multi.view("BookInfo").version == 2
        assert multi.view("CheapBooks").version == 2
        assert_all_consistent(engine, multi)

    def test_mixed_storm_converges(self):
        engine, multi = build_multi(CostModel.paper_default())
        workload = Workload()
        workload.add(
            0.0,
            "library",
            FixedUpdate(
                DataUpdate.insert(
                    CATALOG_SCHEMA,
                    [("NewBook", "A", "B", "C", "fine")],
                )
            ),
        )
        workload.add(
            0.0, "retailer", FixedUpdate(RenameRelation("Item", "Item2"))
        )
        workload.add(
            5.0, "library", FixedUpdate(DropAttribute("Catalog", "Review"))
        )
        engine.schedule_workload(workload)
        DynoScheduler(multi, PESSIMISTIC).run()
        assert_all_consistent(engine, multi)

    def test_abort_leaves_every_view_untouched(self):
        """A broken query during the SECOND view's compute phase must
        not have installed the first view's outcome."""
        engine, multi = build_multi(CostModel(query_base=1.0))
        workload = Workload()
        workload.add(
            0.0, "library", FixedUpdate(DropAttribute("Catalog", "Review"))
        )
        # breaks some scan mid-flight
        workload.add(
            4.5, "retailer", FixedUpdate(RenameRelation("Item", "Item2"))
        )
        engine.schedule_workload(workload)
        DynoScheduler(multi, OPTIMISTIC).run()
        # regardless of when the abort hit, final state is consistent
        assert_all_consistent(engine, multi)
        assert engine.metrics.maintained_updates == 2

    def test_du_footprint_unions_views(self):
        """A DU on Store (only in BookInfo) still conflicts with a
        queued SC on Catalog because BookInfo probes Catalog."""
        from repro.core.detection import detect

        engine, multi = build_multi()
        engine.source("retailer").commit(
            DataUpdate.insert(STORE_SCHEMA, [(3, "Foyles")]), at=0.0
        )
        engine.source("library").commit(
            DropAttribute("Catalog", "Publisher"), at=0.0
        )
        result = detect(multi.umq.messages(), multi.maintenance_queries)
        assert result.has_unsafe
