"""Materialized view extent bookkeeping."""

from repro.relational.delta import Delta
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.views.materialized import MaterializedView

SCHEMA = RelationSchema.of("V", ["a", "b"])


def test_apply_delta_refreshes():
    mv = MaterializedView("V", SCHEMA)
    delta = Delta(SCHEMA)
    delta.add(("1", "2"), 1)
    mv.apply(delta)
    assert ("1", "2") in mv.extent
    assert mv.refresh_count == 1
    assert len(mv) == 1


def test_replace_extent_tracks_definition_version():
    mv = MaterializedView("V", SCHEMA)
    replacement = Table(RelationSchema.of("result", ["a"]), [("x",)])
    mv.replace_extent(replacement, definition_version=3)
    assert mv.definition_version == 3
    assert mv.schema.name == "V"  # renamed to the view's name
    assert ("x",) in mv.extent


def test_replace_extent_copies():
    mv = MaterializedView("V", SCHEMA)
    replacement = Table(RelationSchema.of("result", ["a"]), [("x",)])
    mv.replace_extent(replacement, 2)
    replacement.insert(("y",))
    assert ("y",) not in mv.extent


def test_repr():
    mv = MaterializedView("V", SCHEMA)
    assert "V" in repr(mv)
