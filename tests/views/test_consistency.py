"""The convergence oracle."""

from repro.relational.delta import Delta
from repro.sim.costs import CostModel
from repro.views.consistency import check_convergence
from tests.conftest import build_bookstore


def test_consistent_after_initial_load():
    _engine, manager = build_bookstore(CostModel.free())
    report = check_convergence(manager)
    assert report.consistent
    assert report.expected_rows == report.actual_rows == 2
    assert "consistent" in report.summary()


def test_detects_missing_rows():
    _engine, manager = build_bookstore(CostModel.free())
    schema = manager.mv.extent.schema
    row = next(iter(manager.mv.extent))
    delta = Delta(schema)
    delta.add(row, -1)
    manager.mv.apply(delta)
    report = check_convergence(manager)
    assert not report.consistent
    assert report.missing
    assert "INCONSISTENT" in report.summary()


def test_detects_unexpected_rows():
    _engine, manager = build_bookstore(CostModel.free())
    schema = manager.mv.extent.schema
    delta = Delta(schema)
    ghost = tuple(
        0.0 if attribute.name == "Price" else "ghost"
        for attribute in schema.attributes
    )
    delta.add(ghost, 1)
    manager.mv.apply(delta)
    report = check_convergence(manager)
    assert not report.consistent
    assert report.unexpected


def test_sample_bounds_reported_rows():
    _engine, manager = build_bookstore(CostModel.free())
    schema = manager.mv.extent.schema
    delta = Delta(schema)
    for index in range(20):
        ghost = tuple(
            float(index) if attribute.name == "Price" else f"g{index}"
            for attribute in schema.attributes
        )
        delta.add(ghost, 1)
    manager.mv.apply(delta)
    report = check_convergence(manager, sample=3)
    assert len(report.unexpected) <= 3
