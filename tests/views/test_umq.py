"""UMQ: queueing, the schema-change flag, reorder validation."""

import pytest

from repro.relational.schema import RelationSchema
from repro.sources.messages import DataUpdate, DropAttribute, UpdateMessage
from repro.views.umq import MaintenanceUnit, UMQError, UpdateMessageQueue

R = RelationSchema.of("R", ["a"])


def du(seqno: int) -> UpdateMessage:
    return UpdateMessage("s", seqno, float(seqno), DataUpdate.insert(R, []))


def sc(seqno: int) -> UpdateMessage:
    return UpdateMessage("s", seqno, float(seqno), DropAttribute("R", "a"))


class TestFlag:
    def test_du_does_not_raise_flag(self):
        umq = UpdateMessageQueue()
        umq.receive(du(1))
        assert not umq.new_schema_change_flag

    def test_sc_raises_flag(self):
        umq = UpdateMessageQueue()
        umq.receive(sc(1))
        assert umq.new_schema_change_flag

    def test_test_and_clear_is_atomic_read(self):
        umq = UpdateMessageQueue()
        umq.receive(sc(1))
        assert umq.test_and_clear_schema_change_flag()
        assert not umq.test_and_clear_schema_change_flag()


class TestQueueOps:
    def test_fifo(self):
        umq = UpdateMessageQueue()
        first, second = du(1), du(2)
        umq.receive(first)
        umq.receive(second)
        assert umq.head().head_message is first
        assert umq.remove_head().head_message is first
        assert umq.head().head_message is second

    def test_empty_errors(self):
        umq = UpdateMessageQueue()
        assert umq.is_empty()
        with pytest.raises(UMQError):
            umq.head()
        with pytest.raises(UMQError):
            umq.remove_head()

    def test_messages_flattens_units(self):
        umq = UpdateMessageQueue()
        a, b, c = du(1), du(2), sc(3)
        for message in (a, b, c):
            umq.receive(message)
        umq.replace_order([MaintenanceUnit([a, c]), MaintenanceUnit([b])])
        assert umq.messages() == [a, c, b]
        assert len(umq) == 2

    def test_position_of(self):
        umq = UpdateMessageQueue()
        a, b = du(1), du(2)
        umq.receive(a)
        umq.receive(b)
        assert umq.position_of(b) == 1
        with pytest.raises(UMQError):
            umq.position_of(du(9))

    def test_messages_behind(self):
        umq = UpdateMessageQueue()
        a, b, c = du(1), du(2), du(3)
        for message in (a, b, c):
            umq.receive(message)
        head = umq.head()
        assert umq.messages_behind(head) == [b, c]

    def test_messages_behind_unknown_unit(self):
        umq = UpdateMessageQueue()
        umq.receive(du(1))
        with pytest.raises(UMQError):
            umq.messages_behind(MaintenanceUnit([du(9)]))


class TestReorder:
    def test_replace_order_preserving(self):
        umq = UpdateMessageQueue()
        a, b = du(1), sc(2)
        umq.receive(a)
        umq.receive(b)
        umq.replace_order([MaintenanceUnit([b]), MaintenanceUnit([a])])
        assert umq.head().head_message is b

    def test_replace_order_losing_message_rejected(self):
        umq = UpdateMessageQueue()
        a, b = du(1), du(2)
        umq.receive(a)
        umq.receive(b)
        with pytest.raises(UMQError):
            umq.replace_order([MaintenanceUnit([a])])

    def test_replace_order_inventing_message_rejected(self):
        umq = UpdateMessageQueue()
        a = du(1)
        umq.receive(a)
        with pytest.raises(UMQError):
            umq.replace_order(
                [MaintenanceUnit([a]), MaintenanceUnit([du(9)])]
            )


class TestMaintenanceUnit:
    def test_single(self):
        unit = MaintenanceUnit.single(du(1))
        assert not unit.is_batch
        assert not unit.has_schema_change
        assert len(unit) == 1

    def test_merged(self):
        unit = MaintenanceUnit.merged(
            [MaintenanceUnit([du(1)]), MaintenanceUnit([sc(2)])]
        )
        assert unit.is_batch
        assert unit.has_schema_change
        assert [m.seqno for m in unit] == [1, 2]

    def test_describe_batch(self):
        unit = MaintenanceUnit([du(1), sc(2)])
        assert unit.describe().startswith("BATCH[")

    def test_received_counter(self):
        umq = UpdateMessageQueue()
        umq.receive(du(1))
        umq.receive(sc(2))
        assert umq.received_messages == 2
