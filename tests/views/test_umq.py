"""UMQ: queueing, the schema-change flag, reorder validation."""

import pytest

from repro.relational.schema import RelationSchema
from repro.sources.messages import DataUpdate, DropAttribute, UpdateMessage
from repro.views.umq import MaintenanceUnit, UMQError, UpdateMessageQueue

R = RelationSchema.of("R", ["a"])


def du(seqno: int) -> UpdateMessage:
    return UpdateMessage("s", seqno, float(seqno), DataUpdate.insert(R, []))


def sc(seqno: int) -> UpdateMessage:
    return UpdateMessage("s", seqno, float(seqno), DropAttribute("R", "a"))


class TestFlag:
    def test_du_does_not_raise_flag(self):
        umq = UpdateMessageQueue()
        umq.receive(du(1))
        assert not umq.new_schema_change_flag

    def test_sc_raises_flag(self):
        umq = UpdateMessageQueue()
        umq.receive(sc(1))
        assert umq.new_schema_change_flag

    def test_test_and_clear_is_atomic_read(self):
        umq = UpdateMessageQueue()
        umq.receive(sc(1))
        assert umq.test_and_clear_schema_change_flag()
        assert not umq.test_and_clear_schema_change_flag()


class TestQueueOps:
    def test_fifo(self):
        umq = UpdateMessageQueue()
        first, second = du(1), du(2)
        umq.receive(first)
        umq.receive(second)
        assert umq.head().head_message is first
        assert umq.remove_head().head_message is first
        assert umq.head().head_message is second

    def test_empty_errors(self):
        umq = UpdateMessageQueue()
        assert umq.is_empty()
        with pytest.raises(UMQError):
            umq.head()
        with pytest.raises(UMQError):
            umq.remove_head()

    def test_messages_flattens_units(self):
        umq = UpdateMessageQueue()
        a, b, c = du(1), du(2), sc(3)
        for message in (a, b, c):
            umq.receive(message)
        umq.replace_order([MaintenanceUnit([a, c]), MaintenanceUnit([b])])
        assert umq.messages() == [a, c, b]
        assert len(umq) == 2

    def test_position_of(self):
        umq = UpdateMessageQueue()
        a, b = du(1), du(2)
        umq.receive(a)
        umq.receive(b)
        assert umq.position_of(b) == 1
        with pytest.raises(UMQError):
            umq.position_of(du(9))

    def test_messages_behind(self):
        umq = UpdateMessageQueue()
        a, b, c = du(1), du(2), du(3)
        for message in (a, b, c):
            umq.receive(message)
        head = umq.head()
        assert umq.messages_behind(head) == [b, c]

    def test_messages_behind_unknown_unit(self):
        umq = UpdateMessageQueue()
        umq.receive(du(1))
        with pytest.raises(UMQError):
            umq.messages_behind(MaintenanceUnit([du(9)]))


class TestReorder:
    def test_replace_order_preserving(self):
        umq = UpdateMessageQueue()
        a, b = du(1), sc(2)
        umq.receive(a)
        umq.receive(b)
        umq.replace_order([MaintenanceUnit([b]), MaintenanceUnit([a])])
        assert umq.head().head_message is b

    def test_replace_order_losing_message_rejected(self):
        umq = UpdateMessageQueue()
        a, b = du(1), du(2)
        umq.receive(a)
        umq.receive(b)
        with pytest.raises(UMQError):
            umq.replace_order([MaintenanceUnit([a])])

    def test_replace_order_inventing_message_rejected(self):
        umq = UpdateMessageQueue()
        a = du(1)
        umq.receive(a)
        with pytest.raises(UMQError):
            umq.replace_order(
                [MaintenanceUnit([a]), MaintenanceUnit([du(9)])]
            )


class _Recorder:
    """UMQListener that logs every notification in order."""

    def __init__(self):
        self.events = []

    def umq_received(self, message):
        self.events.append(("received", message))

    def umq_removed_head(self, unit):
        self.events.append(("removed_head", unit))

    def umq_reordered(self, units):
        self.events.append(("reordered", tuple(units)))

    def umq_removed_unit(self, unit, index):
        self.events.append(("removed_unit", unit, index))

    def umq_requeued_front(self, unit):
        self.events.append(("requeued_front", unit))


class TestListeners:
    def _queue(self, count=3):
        umq = UpdateMessageQueue()
        messages = [du(seqno) for seqno in range(1, count + 1)]
        for message in messages:
            umq.receive(message)
        recorder = _Recorder()
        umq.add_listener(recorder)
        return umq, messages, recorder

    def test_receive_notifies_with_message(self):
        umq, _, recorder = self._queue(0)
        message = du(1)
        umq.receive(message)
        assert recorder.events == [("received", message)]

    def test_remove_head_notifies_with_unit(self):
        umq, _, recorder = self._queue(2)
        unit = umq.remove_head()
        assert recorder.events == [("removed_head", unit)]

    def test_remove_unit_mid_queue_notifies_with_vacated_index(self):
        umq, messages, recorder = self._queue(3)
        middle = umq.units[1]
        umq.remove_unit(middle)
        assert recorder.events == [("removed_unit", middle, 1)]
        # Survivors keep consistent positions and flat-message cache.
        assert umq.messages() == [messages[0], messages[2]]
        assert umq.position_of(messages[0]) == 0
        assert umq.position_of(messages[2]) == 1

    def test_remove_unit_at_head_fires_head_event(self):
        umq, _, recorder = self._queue(2)
        head = umq.units[0]
        umq.remove_unit(head)
        # Head-position removal takes the O(1) path and reports itself
        # as a head removal, not a mid-queue one.
        assert recorder.events == [("removed_head", head)]

    def test_remove_unknown_unit_fires_nothing(self):
        umq, _, recorder = self._queue(1)
        with pytest.raises(UMQError):
            umq.remove_unit(MaintenanceUnit([du(9)]))
        assert recorder.events == []

    def test_requeue_front_notifies_and_restores_positions(self):
        umq, messages, recorder = self._queue(3)
        middle = umq.units[1]
        umq.remove_unit(middle)
        umq.requeue_front(middle)
        assert recorder.events == [
            ("removed_unit", middle, 1),
            ("requeued_front", middle),
        ]
        assert umq.head() is middle
        assert umq.messages() == [messages[1], messages[0], messages[2]]
        assert umq.position_of(messages[1]) == 0
        assert umq.position_of(messages[0]) == 1
        assert umq.messages_behind(middle) == [messages[0], messages[2]]

    def test_requeue_of_queued_messages_rejected_without_event(self):
        umq, _, recorder = self._queue(1)
        with pytest.raises(UMQError):
            umq.requeue_front(umq.units[0])
        assert recorder.events == []

    def test_requeue_does_not_count_as_arrival(self):
        umq, _, _ = self._queue(2)
        unit = umq.remove_head()
        received_before = umq.received_messages
        umq.requeue_front(unit)
        assert umq.received_messages == received_before
        assert not umq.new_schema_change_flag

    def test_removed_listener_stops_receiving(self):
        umq, _, recorder = self._queue(1)
        umq.remove_listener(recorder)
        umq.receive(du(5))
        umq.remove_head()
        assert recorder.events == []

    def test_add_listener_is_idempotent(self):
        umq, _, recorder = self._queue(0)
        umq.add_listener(recorder)  # second registration is a no-op
        umq.receive(du(1))
        assert len(recorder.events) == 1


class TestMaintenanceUnit:
    def test_single(self):
        unit = MaintenanceUnit.single(du(1))
        assert not unit.is_batch
        assert not unit.has_schema_change
        assert len(unit) == 1

    def test_merged(self):
        unit = MaintenanceUnit.merged(
            [MaintenanceUnit([du(1)]), MaintenanceUnit([sc(2)])]
        )
        assert unit.is_batch
        assert unit.has_schema_change
        assert [m.seqno for m in unit] == [1, 2]

    def test_describe_batch(self):
        unit = MaintenanceUnit([du(1), sc(2)])
        assert unit.describe().startswith("BATCH[")

    def test_received_counter(self):
        umq = UpdateMessageQueue()
        umq.receive(du(1))
        umq.receive(sc(2))
        assert umq.received_messages == 2
