"""The view manager: initial load, oracle, maintenance dispatch."""

import pytest

from repro.sim.costs import CostModel
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    RenameRelation,
)
from repro.views.umq import MaintenanceUnit
from tests.conftest import CATALOG_SCHEMA, ITEM_SCHEMA, build_bookstore


class TestInitialLoad:
    def test_initial_extent_matches_recompute(self):
        engine, manager = build_bookstore(CostModel.free())
        assert manager.mv.extent == manager.recompute_reference()
        assert len(manager.mv.extent) == 2
        assert manager.mv.refresh_count == 0

    def test_wrappers_feed_umq(self):
        engine, manager = build_bookstore(CostModel.free())
        engine.source("retailer").commit(
            DataUpdate.insert(ITEM_SCHEMA, [(9, "X", "Y", 1.0)]), at=0.0
        )
        assert len(manager.umq) == 1

    def test_schema_lookup(self):
        engine, manager = build_bookstore(CostModel.free())
        schema = manager._schema_lookup("retailer", "Item")
        assert schema is not None and "Book" in schema
        assert manager._schema_lookup("retailer", "Nope") is None
        assert manager._schema_lookup("ghost", "Item") is None


class TestDataUnitMaintenance:
    def test_du_unit_refreshes_view(self):
        engine, manager = build_bookstore(CostModel.free())
        engine.source("retailer").commit(
            DataUpdate.insert(
                ITEM_SCHEMA, [(1, "Databases", "Again", 9.0)]
            ),
            at=0.0,
        )
        unit = manager.umq.head()
        engine.run_process(manager.build_maintenance(unit))
        assert manager.mv.extent == manager.recompute_reference()
        assert engine.metrics.view_refreshes == 1
        assert engine.metrics.maintained_updates == 1

    def test_irrelevant_du_no_refresh(self):
        engine, manager = build_bookstore(CostModel.free())
        reader = engine.source("digest").schema_of("ReaderDigest")
        engine.source("digest").commit(
            DataUpdate.insert(reader, [("A", "B")]), at=0.0
        )
        unit = manager.umq.head()
        engine.run_process(manager.build_maintenance(unit))
        assert engine.metrics.view_refreshes == 0
        assert engine.metrics.maintained_updates == 1


class TestSchemaUnitMaintenance:
    def test_sc_unit_installs_definition_and_extent(self):
        engine, manager = build_bookstore(CostModel.free())
        engine.source("library").commit(
            DropAttribute("Catalog", "Review"), at=0.0
        )
        unit = manager.umq.head()
        engine.run_process(manager.build_maintenance(unit))
        assert manager.view.version == 2
        assert manager.mv.definition_version == 2
        assert manager.mv.extent == manager.recompute_reference()

    def test_view_untouched_on_abort(self):
        engine, manager = build_bookstore(CostModel(query_base=1.0))
        engine.source("library").commit(
            DropAttribute("Catalog", "Review"), at=0.0
        )
        # break the adaptation mid-flight
        engine.schedule(
            3.5,
            lambda: engine.source("retailer").commit(
                RenameRelation("Item", "Item2"), at=3.5
            ),
        )
        unit = manager.umq.head()
        from repro.sources.errors import BrokenQueryError

        before_rows = len(manager.mv.extent)
        with pytest.raises(BrokenQueryError):
            engine.run_process(manager.build_maintenance(unit))
        assert manager.view.version == 1  # w(VD) stayed in-memory
        assert len(manager.mv.extent) == before_rows

    def test_non_conflicting_sc_is_cheap_noop(self):
        engine, manager = build_bookstore(CostModel.free())
        engine.source("library").commit(
            DropAttribute("Catalog", "Author"), at=0.0
        )
        unit = manager.umq.head()
        engine.run_process(manager.build_maintenance(unit))
        assert manager.view.version == 1
        assert engine.metrics.maintained_updates == 1

    def test_batch_with_noop_sc_still_maintains_dus(self):
        engine, manager = build_bookstore(CostModel.free())
        source = engine.source("retailer")
        source.commit(
            DataUpdate.insert(ITEM_SCHEMA, [(1, "Databases", "Z", 3.0)]),
            at=0.0,
        )
        engine.source("library").commit(
            DropAttribute("Catalog", "Author"), at=0.0
        )
        messages = manager.umq.messages()
        manager.umq.replace_order([MaintenanceUnit(list(messages))])
        unit = manager.umq.head()
        engine.run_process(manager.build_maintenance(unit))
        assert manager.mv.extent == manager.recompute_reference()
        assert engine.metrics.maintained_updates == 2

    def test_batch_du_and_sc(self):
        engine, manager = build_bookstore(CostModel.free())
        engine.source("retailer").commit(
            DataUpdate.insert(ITEM_SCHEMA, [(1, "Databases", "Z", 3.0)]),
            at=0.0,
        )
        engine.source("library").commit(
            DropAttribute("Catalog", "Review"), at=0.0
        )
        messages = manager.umq.messages()
        manager.umq.replace_order([MaintenanceUnit(list(messages))])
        engine.run_process(manager.build_maintenance(manager.umq.head()))
        assert manager.view.version == 2
        assert manager.mv.extent == manager.recompute_reference()


class TestConnect:
    def test_late_source_joins(self):
        from repro.relational.schema import RelationSchema
        from repro.sources.source import DataSource

        engine, manager = build_bookstore(CostModel.free())
        newcomer = DataSource("late")
        newcomer.create_relation(RelationSchema.of("Extra", ["a"]))
        manager.connect(newcomer)
        newcomer.commit(
            DataUpdate.insert(newcomer.schema_of("Extra"), [("v",)]), at=0.0
        )
        assert len(manager.umq) == 1
