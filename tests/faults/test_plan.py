"""Fault plans: plain data, exact lookups, reproducible randomness."""

import pytest

from repro.faults.plan import (
    CrashWindow,
    FaultPlan,
    LinkFault,
    TransientFault,
)


class TestFaultShapes:
    def test_transient_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TransientFault("s", 0, kind="meltdown")

    def test_crash_window_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            CrashWindow("s", 2.0, 2.0)

    def test_crash_window_half_open(self):
        window = CrashWindow("s", 1.0, 3.0)
        assert window.covers(1.0)
        assert window.covers(2.999)
        assert not window.covers(3.0)
        assert not window.covers(0.999)

    def test_link_fault_total_delay_composes_drops(self):
        fault = LinkFault("s", 0, delay=0.2, drops=2, redelivery_delay=0.1)
        assert fault.total_delay == pytest.approx(0.4)


class TestFaultPlanLookups:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.transient_for("s", 0) is None
        assert plan.crash_covering("s", 0.0) is None
        assert plan.link_fault_for("s", 0) is None

    def test_transient_lookup_is_source_and_attempt_exact(self):
        fault = TransientFault("a", 3)
        plan = FaultPlan(transients=(fault,))
        assert plan.transient_for("a", 3) is fault
        assert plan.transient_for("a", 2) is None
        assert plan.transient_for("b", 3) is None

    def test_crash_lookup_respects_window(self):
        window = CrashWindow("a", 1.0, 2.0)
        plan = FaultPlan(crashes=(window,))
        assert plan.crash_covering("a", 1.5) is window
        assert plan.crash_covering("a", 2.5) is None
        assert plan.crash_covering("b", 1.5) is None

    def test_link_lookup_is_message_indexed(self):
        fault = LinkFault("a", 1, delay=0.3)
        plan = FaultPlan(link_faults=(fault,))
        assert plan.link_fault_for("a", 1) is fault
        assert plan.link_fault_for("a", 0) is None

    def test_describe_mentions_counts_and_seed(self):
        plan = FaultPlan(
            transients=(TransientFault("a", 0),),
            crashes=(CrashWindow("a", 0.0, 1.0),),
            seed=42,
        )
        text = plan.describe()
        assert "1 transients" in text
        assert "1 crash windows" in text
        assert "seed=42" in text


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        first = FaultPlan.random(11, ["a", "b"])
        second = FaultPlan.random(11, ["a", "b"])
        assert first.transients == second.transients
        assert first.crashes == second.crashes
        assert first.link_faults == second.link_faults

    def test_different_seeds_differ(self):
        plans = [FaultPlan.random(seed, ["a", "b"]) for seed in range(5)]
        signatures = {
            (p.transients, p.crashes, p.link_faults) for p in plans
        }
        assert len(signatures) > 1

    def test_crashes_fit_inside_horizon(self):
        for seed in range(10):
            plan = FaultPlan.random(seed, ["a"], horizon=7.5)
            for window in plan.crashes:
                assert 0.0 <= window.start < window.end <= 7.5

    def test_fault_sets_are_finite_and_slot_bounded(self):
        plan = FaultPlan.random(
            3, ["a", "b"], attempt_slots=10, message_slots=5
        )
        assert all(f.attempt_index < 10 for f in plan.transients)
        assert all(f.message_index < 5 for f in plan.link_faults)
        assert all(f.kind in ("error", "timeout") for f in plan.transients)

    def test_seed_recorded_for_reporting(self):
        assert FaultPlan.random(9, ["a"]).seed == 9
