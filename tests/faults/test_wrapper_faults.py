"""Wrapper transmission: engine-realized latency, link faults, FIFO."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkFault
from repro.relational.schema import RelationSchema
from repro.sim.costs import CostModel
from repro.sim.engine import SimEngine
from repro.sources.messages import DataUpdate
from repro.sources.source import DataSource
from repro.sources.wrapper import Wrapper

R = RelationSchema.of("R", ["a"])


def build(latency=0.0, plan=None):
    engine = SimEngine(CostModel.free())
    source = engine.add_source(DataSource("s"))
    source.create_relation(R)
    if plan is not None:
        engine.install_faults(FaultInjector(plan))
    received = []
    wrapper = Wrapper(source, received.append, latency=latency, engine=engine)
    return engine, source, wrapper, received


def insert(value):
    return DataUpdate.insert(R, [(value,)])


class TestLatency:
    def test_delivery_scheduled_at_commit_plus_latency(self):
        engine, source, wrapper, received = build(latency=0.5)
        source.commit(insert("x"), at=0.0)
        assert received == []  # committed, not yet delivered
        assert wrapper.in_flight == 1
        engine.advance_to(0.49)
        assert received == []
        engine.advance_to(0.5)
        assert len(received) == 1
        assert wrapper.in_flight == 0

    def test_zero_latency_with_engine_is_synchronous(self):
        engine, source, wrapper, received = build(latency=0.0)
        source.commit(insert("x"), at=0.0)
        assert len(received) == 1

    def test_without_engine_latency_is_ignored_synchronously(self):
        # The historical fast path: no engine, nothing to schedule on.
        source = DataSource("s")
        source.create_relation(R)
        received = []
        Wrapper(source, received.append, latency=5.0)
        source.commit(insert("x"), at=0.0)
        assert len(received) == 1

    def test_late_commit_during_advance_delivers_at_commit_time(self):
        engine, source, wrapper, received = build(latency=0.25)
        engine.schedule(1.0, lambda: source.commit(insert("x"), at=1.0))
        engine.advance_to(2.0)
        assert len(received) == 1
        assert received[0].committed_at == pytest.approx(1.0)


class TestLinkFaults:
    def test_fault_delay_composes_with_latency(self):
        plan = FaultPlan(link_faults=(LinkFault("s", 0, delay=0.3),))
        engine, source, wrapper, received = build(latency=0.2, plan=plan)
        source.commit(insert("x"), at=0.0)
        engine.advance_to(0.49)
        assert received == []
        engine.advance_to(0.5)  # 0.2 latency + 0.3 fault delay
        assert len(received) == 1

    def test_drop_with_redelivery_is_late_never_lost(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault("s", 0, drops=2, redelivery_delay=0.4),
            )
        )
        engine, source, wrapper, received = build(plan=plan)
        source.commit(insert("x"), at=0.0)
        engine.advance_to(0.79)
        assert received == []
        engine.advance_to(0.8)
        assert len(received) == 1


class TestFifo:
    def test_delayed_message_holds_back_successors(self):
        """Per-source commit order must survive heterogeneous delays:
        Definition 4's semantic dependencies assume FIFO wrappers."""
        plan = FaultPlan(link_faults=(LinkFault("s", 0, delay=1.0),))
        engine, source, wrapper, received = build(plan=plan)
        source.commit(insert("first"), at=0.0)   # delayed to t=1.0
        source.commit(insert("second"), at=0.1)  # undelayed but behind
        engine.advance_to(0.5)
        assert received == []  # second waits for first
        engine.advance_to(1.0)
        assert [
            next(iter(m.payload.delta.insertions.rows()))[0]
            for m in received
        ] == ["first", "second"]

    def test_pending_messages_reports_commit_order(self):
        plan = FaultPlan(link_faults=(LinkFault("s", 0, delay=1.0),))
        engine, source, wrapper, received = build(plan=plan)
        source.commit(insert("first"), at=0.0)
        source.commit(insert("second"), at=0.1)
        pending = wrapper.pending_messages()
        assert [m.committed_at for m in pending] == [0.0, 0.1]
        engine.advance_to(1.0)
        assert wrapper.pending_messages() == ()

    def test_counters_track_flight(self):
        plan = FaultPlan(link_faults=(LinkFault("s", 1, delay=0.5),))
        engine, source, wrapper, received = build(plan=plan)
        source.commit(insert("a"), at=0.0)  # sync (no delay, empty buffer)
        source.commit(insert("b"), at=0.0)  # delayed
        assert wrapper.forwarded == 2
        assert wrapper.delivered == 1
        assert wrapper.in_flight == 1
        engine.advance_to(0.5)
        assert wrapper.delivered == 2
