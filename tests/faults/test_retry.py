"""Retry policy: exponential growth, caps, deterministic jitter."""

import pytest

from repro.faults.retry import RetryPolicy


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            base_backoff=0.1, multiplier=2.0, max_backoff=10.0, jitter=0.0
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            base_backoff=0.1, multiplier=10.0, max_backoff=0.5, jitter=0.0
        )
        assert policy.backoff(5) == pytest.approx(0.5)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_backoff=1.0, jitter=0.25, max_backoff=1.0)
        for failures in range(1, 20):
            value = policy.backoff(failures, salt="s")
            assert 0.75 <= value <= 1.0

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff(2, salt="x") == policy.backoff(2, salt="x")

    def test_salt_decorrelates_cofailing_queries(self):
        policy = RetryPolicy(base_backoff=1.0, jitter=0.5, max_backoff=1.0)
        values = {policy.backoff(1, salt=str(i)) for i in range(8)}
        assert len(values) > 1  # not retrying in lockstep

    def test_failures_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_full_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestPresets:
    def test_none_disables_retries(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert policy.deadline == 0.0

    def test_aggressive_retries_fast_and_often(self):
        policy = RetryPolicy.aggressive()
        assert policy.max_attempts > RetryPolicy().max_attempts
        assert policy.base_backoff < RetryPolicy().base_backoff
