"""The injector realizes a plan: attempt slots, crash windows, links."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashWindow,
    FaultPlan,
    LinkFault,
    TransientFault,
)
from repro.sources.errors import QueryTimeoutError, TransientSourceError


class TestQueryPath:
    def test_attempt_indexing_includes_clean_attempts(self):
        plan = FaultPlan(transients=(TransientFault("a", 1),))
        injector = FaultInjector(plan)
        injector.on_query("a", 0.0)  # attempt 0: clean
        with pytest.raises(TransientSourceError):
            injector.on_query("a", 0.0)  # attempt 1: injected
        injector.on_query("a", 0.0)  # attempt 2: clean again
        assert injector.query_attempts("a") == 3
        assert injector.stats.injected_transients == 1

    def test_attempt_counters_are_per_source(self):
        plan = FaultPlan(transients=(TransientFault("a", 0),))
        injector = FaultInjector(plan)
        injector.on_query("b", 0.0)  # does not consume a's slot
        with pytest.raises(TransientSourceError):
            injector.on_query("a", 0.0)

    def test_timeout_carries_elapsed_time(self):
        plan = FaultPlan(
            transients=(
                TransientFault("a", 0, kind="timeout", timeout=0.75),
            )
        )
        injector = FaultInjector(plan)
        with pytest.raises(QueryTimeoutError) as caught:
            injector.on_query("a", 0.0)
        assert caught.value.elapsed == pytest.approx(0.75)
        assert injector.stats.injected_timeouts == 1

    def test_crash_window_dominates_and_hints_recovery(self):
        plan = FaultPlan(
            transients=(TransientFault("a", 0),),
            crashes=(CrashWindow("a", 0.0, 2.0),),
        )
        injector = FaultInjector(plan)
        with pytest.raises(TransientSourceError) as caught:
            injector.on_query("a", 0.5)
        assert caught.value.retry_at == pytest.approx(2.0)
        assert injector.stats.crash_rejections == 1
        # The crashed attempt did not consume a transient slot: the
        # first post-recovery attempt still hits attempt index 0.
        with pytest.raises(TransientSourceError):
            injector.on_query("a", 2.5)
        assert injector.stats.injected_transients == 1

    def test_clean_source_never_faults(self):
        injector = FaultInjector(FaultPlan())
        for _ in range(10):
            injector.on_query("a", 1.0)
        assert injector.stats.total_injected == 0


class TestLinkPath:
    def test_unfaulted_messages_get_zero_delay(self):
        injector = FaultInjector(FaultPlan())
        assert injector.on_forward("a") == 0.0

    def test_delay_fault_returns_extra_latency(self):
        plan = FaultPlan(link_faults=(LinkFault("a", 1, delay=0.3),))
        injector = FaultInjector(plan)
        assert injector.on_forward("a") == 0.0  # message 0
        assert injector.on_forward("a") == pytest.approx(0.3)  # message 1
        assert injector.stats.delayed_messages == 1

    def test_drops_surface_as_redelivery_delay(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault("a", 0, drops=2, redelivery_delay=0.25),
            )
        )
        injector = FaultInjector(plan)
        assert injector.on_forward("a") == pytest.approx(0.5)
        assert injector.stats.dropped_messages == 2

    def test_message_counters_are_per_source(self):
        plan = FaultPlan(link_faults=(LinkFault("a", 0, delay=0.1),))
        injector = FaultInjector(plan)
        assert injector.on_forward("b") == 0.0
        assert injector.on_forward("a") == pytest.approx(0.1)


def test_describe_mentions_plan():
    injector = FaultInjector(FaultPlan(seed=5))
    assert "seed=5" in injector.describe()
