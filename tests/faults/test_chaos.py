"""Property-style chaos harness (the ISSUE's acceptance experiment).

Fifty seeded random fault plans — transients, timeouts, crash windows,
link delays and drops — are thrown at a two-source join view under both
the pessimistic and the optimistic strategy.  Every faulty run must
converge to exactly the fault-free extent, no transient failure may ever
surface as a broken-query flag, and faults must make maintenance
strictly more expensive in aggregate (retries, backoff and timeouts are
charged to the virtual clock, never hidden).
"""

import pytest

from repro import (
    DataUpdate,
    DyDaSystem,
    FaultPlan,
    OPTIMISTIC,
    PESSIMISTIC,
    RelationSchema,
    RetryPolicy,
)
from repro.views.consistency import check_convergence

R = RelationSchema.of("R", ["k", "v"])
Q = RelationSchema.of("Q", ["k", "w"])

SEEDS = range(25)  # x2 strategies = 50 fault plans


def run_scenario(strategy, plan=None, policy=None):
    system = DyDaSystem(
        strategy=strategy, fault_plan=plan, retry_policy=policy
    )
    a = system.add_source("a")
    b = system.add_source("b")
    a.create_relation(R, [("1", "x")])
    b.create_relation(Q, [("1", "y")])
    system.define_view(
        "CREATE VIEW V AS SELECT R.k, R.v, Q.w FROM a.R R, b.Q Q "
        "WHERE R.k = Q.k"
    )
    for i in range(5):
        system.schedule(
            i * 0.5, "a", DataUpdate.insert(R, [(str(i + 2), "z")])
        )
        system.schedule(
            i * 0.5 + 0.1, "b", DataUpdate.insert(Q, [(str(i + 2), "w")])
        )
    system.run()
    return system


@pytest.mark.parametrize(
    "strategy", [PESSIMISTIC, OPTIMISTIC], ids=["pessimistic", "optimistic"]
)
def test_chaos_converges_to_fault_free_extent(strategy):
    baseline = run_scenario(strategy)
    report = baseline.check()
    assert report.consistent, report.summary()
    expected = sorted(baseline.extent().rows())
    base_cost = baseline.now

    total_faults = 0
    total_transients = 0
    total_faulty_cost = 0.0
    for seed in SEEDS:
        plan = FaultPlan.random(seed, ["a", "b"], horizon=5.0)
        system = run_scenario(strategy, plan, RetryPolicy.aggressive())
        manager = system.managers[0]

        # Convergence: final extent equals the fault-free run exactly.
        report = check_convergence(manager)
        assert report.consistent, (
            f"seed {seed}: {report.summary()} under {plan.describe()}"
        )
        assert sorted(system.extent().rows()) == expected, f"seed {seed}"

        # Faults are outages, never anomalies: a DU-only stream must not
        # produce a single broken-query flag, genuine or false.
        stats = system.stats
        assert system.metrics.broken_queries == 0, f"seed {seed}"
        assert stats.genuine_broken_flags == 0, f"seed {seed}"
        assert system.metrics.aborts == 0, f"seed {seed}"

        # Determinism: the same seed reproduces the same plan.
        assert FaultPlan.random(seed, ["a", "b"], horizon=5.0) == plan

        total_faults += system.fault_stats.total_injected
        total_transients += system.metrics.transient_failures
        total_faulty_cost += system.now

    # The sweep actually exercised the fault machinery...
    assert total_faults > 0
    assert total_transients > 0
    # ...and honesty: faulty maintenance is strictly more expensive.
    assert total_faulty_cost > len(list(SEEDS)) * base_cost


@pytest.mark.parametrize(
    "strategy", [PESSIMISTIC, OPTIMISTIC], ids=["pessimistic", "optimistic"]
)
def test_chaos_with_exhaustion_and_quarantine(strategy):
    """A stingy retry budget forces quarantine rounds mid-chaos; the
    degradation path must still land on the fault-free extent."""
    policy = RetryPolicy(
        max_attempts=2,
        base_backoff=0.05,
        jitter=0.0,
        deadline=0.0,
        quarantine_probe=0.5,
    )
    baseline = run_scenario(strategy)
    expected = sorted(baseline.extent().rows())

    quarantines = 0
    for seed in (2, 3, 5, 8, 9):  # dense-transient plans
        plan = FaultPlan.random(
            seed, ["a", "b"], horizon=5.0, transient_rate=0.4
        )
        system = run_scenario(strategy, plan, policy)
        assert system.check().consistent, f"seed {seed}"
        assert sorted(system.extent().rows()) == expected, f"seed {seed}"
        assert system.stats.genuine_broken_flags == 0, f"seed {seed}"
        assert (
            system.stats.false_flags_avoided
            == len(system.stats.quarantine_events)
        )
        quarantines += len(system.stats.quarantine_events)
    assert quarantines > 0  # the sweep hit the quarantine path
