"""Graceful scheduler degradation: classify, quarantine, defer, resume."""

import pytest

from repro import (
    DataUpdate,
    DyDaSystem,
    FaultPlan,
    OPTIMISTIC,
    PESSIMISTIC,
    RelationSchema,
    RetryPolicy,
)
from repro.faults.plan import CrashWindow, TransientFault

R = RelationSchema.of("R", ["k", "v"])
S = RelationSchema.of("S", ["k", "v"])
T = RelationSchema.of("T", ["k", "w"])

#: retries exhaust quickly and deterministically
FAST_EXHAUST = RetryPolicy(
    max_attempts=2,
    base_backoff=0.05,
    jitter=0.0,
    deadline=0.0,
    quarantine_probe=1.0,
)


def build(strategy, plan, policy=FAST_EXHAUST):
    """Sources a, b, c; view VA over a alone, view VBC joining b and c.

    Updates to a never read b or c, so maintenance of a-updates must
    keep running while c is down; updates to b probe c and hit faults.
    """
    system = DyDaSystem(
        strategy=strategy, fault_plan=plan, retry_policy=policy
    )
    a = system.add_source("a")
    b = system.add_source("b")
    c = system.add_source("c")
    a.create_relation(R, [("1", "x")])
    b.create_relation(S, [("1", "y")])
    c.create_relation(T, [("1", "z")])
    system.define_view("CREATE VIEW VA AS SELECT R.k, R.v FROM a.R R")
    system.define_view(
        "CREATE VIEW VBC AS SELECT S.k, T.w FROM b.S S, c.T T "
        "WHERE S.k = T.k"
    )
    return system


@pytest.mark.parametrize("strategy", [PESSIMISTIC, OPTIMISTIC])
class TestQuarantine:
    def test_crash_quarantines_and_recovers(self, strategy):
        plan = FaultPlan(crashes=(CrashWindow("c", 0.0, 3.0),))
        system = build(strategy, plan)
        system.schedule(0.0, "b", DataUpdate.insert(S, [("2", "y2")]))
        system.schedule(0.0, "a", DataUpdate.insert(R, [("2", "x2")]))
        stats = system.run()

        # The outage was classified, never flagged as a broken query.
        assert stats.false_flags_avoided >= 1
        assert stats.genuine_broken_flags == 0
        assert system.metrics.broken_queries == 0
        assert system.metrics.exhausted_queries >= 1

        # Quarantine honoured the crash window's recovery hint.
        assert stats.quarantine_events
        now, source, until = stats.quarantine_events[0]
        assert source == "c"
        assert until == pytest.approx(3.0)
        assert stats.resumed_sources >= 1

        # Both views converge after recovery and drain.
        assert system.check("VA").consistent
        assert system.check("VBC").consistent

    def test_independent_maintenance_continues_during_outage(
        self, strategy
    ):
        plan = FaultPlan(crashes=(CrashWindow("c", 0.0, 3.0),))
        system = build(strategy, plan)
        # b first: its unit heads the queue and hits the crashed c.
        system.schedule(0.0, "b", DataUpdate.insert(S, [("2", "y2")]))
        system.schedule(0.0, "a", DataUpdate.insert(R, [("2", "x2")]))
        system.run()
        stats = system.stats

        # The a-unit was promoted past the parked b-unit.
        assert stats.deferred_units >= 1
        assert system.check("VA").consistent
        assert system.check("VBC").consistent

    def test_outage_never_pollutes_abort_metrics(self, strategy):
        """An exhausted source is an outage, not an anomaly: none of the
        paper's abort accounting may move."""
        plan = FaultPlan(crashes=(CrashWindow("c", 0.0, 3.0),))
        system = build(strategy, plan)
        system.schedule(0.0, "b", DataUpdate.insert(S, [("2", "y2")]))
        system.run()
        assert system.metrics.aborts == 0
        assert system.metrics.abort_cost == 0.0
        assert system.stats.abort_events == []
        assert sum(system.metrics.anomalies.values()) == 0

    def test_repeated_exhaustion_drains_transient_slots(self, strategy):
        """Attempt-indexed transients: each retry consumes the next
        slot, so a finite plan is always drained eventually."""
        plan = FaultPlan(
            transients=tuple(TransientFault("c", i) for i in range(6))
        )
        system = build(strategy, plan)
        system.schedule(0.0, "b", DataUpdate.insert(S, [("2", "y2")]))
        stats = system.run()
        # 6 faulty slots / 2 attempts per round = 3 quarantine rounds.
        assert stats.false_flags_avoided == 3
        assert len(stats.quarantine_events) == 3
        assert stats.resumed_sources == 3
        assert system.check("VBC").consistent

    def test_fault_stats_mirrored_into_scheduler_stats(self, strategy):
        plan = FaultPlan(transients=(TransientFault("c", 0),))
        system = build(
            strategy,
            plan,
            RetryPolicy(max_attempts=3, jitter=0.0, deadline=0.0),
        )
        system.schedule(0.0, "b", DataUpdate.insert(S, [("2", "y2")]))
        stats = system.run()
        assert stats.retries == system.metrics.retries == 1
        assert stats.transient_failures == 1
        assert stats.backoff_time == pytest.approx(
            system.metrics.backoff_time
        )
        assert stats.backoff_time > 0.0


class TestTransientsNeverFlagged:
    @pytest.mark.parametrize("strategy", [PESSIMISTIC, OPTIMISTIC])
    def test_du_only_stream_raises_no_broken_flags(self, strategy):
        plan = FaultPlan.random(13, ["a", "b", "c"], horizon=5.0)
        system = build(strategy, plan, RetryPolicy.aggressive())
        for i in range(4):
            system.schedule(
                i * 0.3, "b", DataUpdate.insert(S, [(str(i + 2), "y")])
            )
            system.schedule(
                i * 0.3, "c", DataUpdate.insert(T, [(str(i + 2), "w")])
            )
        stats = system.run()
        assert system.metrics.transient_failures > 0
        assert stats.genuine_broken_flags == 0
        assert system.metrics.broken_queries == 0
        assert system.check("VBC").consistent
