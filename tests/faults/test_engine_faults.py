"""The engine's retry loop: backoff charged to the clock, honest costs."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, TransientFault
from repro.faults.retry import RetryPolicy
from repro.relational.schema import RelationSchema
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.predicate import attr
from repro.sim.costs import CostModel
from repro.sim.effects import SourceQuery
from repro.sim.engine import QueryAnswer, SimEngine
from repro.sources.errors import (
    BrokenQueryError,
    QueryTimeoutError,
    SourceError,
    SourceUnavailableError,
    TransientSourceError,
)
from repro.sources.source import DataSource

R = RelationSchema.of("R", ["a"])


def build_engine(plan, policy, cost_model=None):
    engine = SimEngine(cost_model or CostModel.free())
    source = engine.add_source(DataSource("s"))
    source.create_relation(R, [("x",)])
    engine.install_faults(FaultInjector(plan), policy)
    return engine


def query_effect() -> SourceQuery:
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "a"),),
        joins=(),
    )
    return SourceQuery("s", query)


class TestErrorTaxonomy:
    """Transient failures must be distinguishable from broken queries."""

    def test_transient_is_not_a_broken_query(self):
        assert not issubclass(TransientSourceError, BrokenQueryError)
        assert issubclass(TransientSourceError, SourceError)

    def test_timeout_is_transient(self):
        assert issubclass(QueryTimeoutError, TransientSourceError)

    def test_unavailable_is_not_a_broken_query(self):
        assert not issubclass(SourceUnavailableError, BrokenQueryError)

    def test_unavailable_propagates_recovery_hint(self):
        last = TransientSourceError("s", "crashed", retry_at=4.5)
        down = SourceUnavailableError("s", 3, "exhausted", last_error=last)
        assert down.retry_at == pytest.approx(4.5)


class TestRetryLoop:
    def test_transient_is_retried_and_charged(self):
        policy = RetryPolicy(
            max_attempts=3, base_backoff=0.1, jitter=0.0, deadline=0.0
        )
        engine = build_engine(
            FaultPlan(transients=(TransientFault("s", 0),)), policy
        )
        answer = engine.perform(query_effect())
        assert isinstance(answer, QueryAnswer)
        assert len(answer.table) == 1
        assert engine.metrics.transient_failures == 1
        assert engine.metrics.retries == 1
        assert engine.metrics.backoff_time == pytest.approx(0.1)
        assert engine.clock.now == pytest.approx(0.1)  # free cost model

    def test_retry_overhead_from_cost_model(self):
        policy = RetryPolicy(
            max_attempts=2, base_backoff=0.1, jitter=0.0, deadline=0.0
        )
        import dataclasses

        cost = dataclasses.replace(CostModel.free(), retry_overhead=0.05)
        engine = build_engine(
            FaultPlan(transients=(TransientFault("s", 0),)), policy, cost
        )
        engine.perform(query_effect())
        assert engine.metrics.backoff_time == pytest.approx(0.15)

    def test_exhaustion_raises_unavailable_not_broken(self):
        policy = RetryPolicy(
            max_attempts=2, base_backoff=0.01, jitter=0.0, deadline=0.0
        )
        plan = FaultPlan(
            transients=tuple(TransientFault("s", i) for i in range(4))
        )
        engine = build_engine(plan, policy)
        with pytest.raises(SourceUnavailableError) as caught:
            engine.perform(query_effect())
        assert not isinstance(caught.value, BrokenQueryError)
        assert caught.value.attempts == 2
        assert engine.metrics.exhausted_queries == 1
        assert engine.metrics.broken_queries == 0

    def test_timeout_consumes_virtual_time(self):
        policy = RetryPolicy(
            max_attempts=2, base_backoff=0.1, jitter=0.0, deadline=0.0
        )
        plan = FaultPlan(
            transients=(
                TransientFault("s", 0, kind="timeout", timeout=0.5),
            )
        )
        engine = build_engine(plan, policy)
        engine.perform(query_effect())
        # 0.5s waiting for the timeout + 0.1s backoff, all on the clock.
        assert engine.clock.now == pytest.approx(0.6)

    def test_deadline_exhausts_before_max_attempts(self):
        policy = RetryPolicy(
            max_attempts=100, base_backoff=1.0, jitter=0.0, deadline=0.5
        )
        plan = FaultPlan(
            transients=tuple(TransientFault("s", i) for i in range(10))
        )
        engine = build_engine(plan, policy)
        with pytest.raises(SourceUnavailableError) as caught:
            engine.perform(query_effect())
        assert "deadline" in str(caught.value)

    def test_no_retries_policy_is_terminal_on_first_fault(self):
        engine = build_engine(
            FaultPlan(transients=(TransientFault("s", 0),)),
            RetryPolicy.none(),
        )
        with pytest.raises(SourceUnavailableError):
            engine.perform(query_effect())
        assert engine.metrics.retries == 0

    def test_clean_plan_leaves_query_path_untouched(self):
        engine = build_engine(FaultPlan(), RetryPolicy())
        answer = engine.perform(query_effect())
        assert isinstance(answer, QueryAnswer)
        assert engine.metrics.transient_failures == 0
        assert engine.metrics.retries == 0

    def test_install_faults_arms_future_sources(self):
        engine = SimEngine(CostModel.free())
        engine.install_faults(
            FaultInjector(
                FaultPlan(transients=(TransientFault("late", 0),))
            ),
            RetryPolicy.none(),
        )
        late = engine.add_source(DataSource("late"))
        late.create_relation(R, [("x",)])
        query = SPJQuery(
            relations=(RelationRef("late", "R", "R"),),
            projection=(attr("R", "a"),),
            joins=(),
        )
        with pytest.raises(SourceUnavailableError):
            engine.perform(SourceQuery("late", query))
