"""Chaos squared: source faults *and* warehouse crashes in one run.

The chaos harness of ``test_chaos.py`` throws seeded source-side fault
plans (transients, timeouts, crash windows, link faults) at a two-source
join view; this module additionally kills the *warehouse* mid-run with a
seeded :class:`CrashPlan` and requires the journal/checkpoint recovery
path to compose with the fault machinery: every run must still converge
to exactly the fault-free, crash-free extent.
"""

import pytest

from repro import (
    CrashPlan,
    DataUpdate,
    DyDaSystem,
    FaultPlan,
    OPTIMISTIC,
    PESSIMISTIC,
    RelationSchema,
    RetryPolicy,
)
from repro.views.consistency import check_convergence

R = RelationSchema.of("R", ["k", "v"])
Q = RelationSchema.of("Q", ["k", "w"])

# Crash points a serial DyDa run visits (parallel.* are unreachable
# here and would make the sweep vacuous at those seeds).
SERIAL_POINTS = tuple(
    point
    for point in (
        "serial.pre_detect",
        "serial.pre_maintain",
        "serial.pre_commit",
        "serial.post_commit",
        "install.pre_journal",
        "install.post_journal",
        "install.post_apply",
        "checkpoint.pre",
        "checkpoint.mid",
        "checkpoint.post",
    )
)


def run_scenario(strategy, fault_plan=None, policy=None, crash_plan=None):
    system = DyDaSystem(
        strategy=strategy,
        fault_plan=fault_plan,
        retry_policy=policy,
        crash_plan=crash_plan,
        checkpoint_every=2,
    )
    a = system.add_source("a")
    b = system.add_source("b")
    a.create_relation(R, [("1", "x")])
    b.create_relation(Q, [("1", "y")])
    system.define_view(
        "CREATE VIEW V AS SELECT R.k, R.v, Q.w FROM a.R R, b.Q Q "
        "WHERE R.k = Q.k"
    )
    for i in range(5):
        system.schedule(
            i * 0.5, "a", DataUpdate.insert(R, [(str(i + 2), "z")])
        )
        system.schedule(
            i * 0.5 + 0.1, "b", DataUpdate.insert(Q, [(str(i + 2), "w")])
        )
    system.run()
    return system


@pytest.mark.parametrize(
    "strategy", [PESSIMISTIC, OPTIMISTIC], ids=["pessimistic", "optimistic"]
)
def test_source_faults_and_warehouse_crashes_compose(strategy):
    baseline = run_scenario(strategy)
    assert baseline.check().consistent
    expected = sorted(baseline.extent().rows())

    crashes_survived = 0
    faults_injected = 0
    for seed in range(12):
        fault_plan = FaultPlan.random(seed, ["a", "b"], horizon=5.0)
        crash_plan = CrashPlan.random(
            seed, points=SERIAL_POINTS, max_hit=4
        )
        system = run_scenario(
            strategy,
            fault_plan,
            RetryPolicy.aggressive(),
            crash_plan,
        )
        key = f"seed {seed}: {fault_plan.describe()} + {crash_plan.describe()}"

        report = check_convergence(system.managers[0])
        assert report.consistent, f"{key}: {report.summary()}"
        assert sorted(system.extent().rows()) == expected, key

        # Neither fault family may masquerade as the other: no broken
        # queries from a DU-only stream, crashes surface only as
        # recoveries.
        assert system.metrics.broken_queries == 0, key
        assert system.stats.genuine_broken_flags == 0, key
        assert len(system.crash_reports) == system.metrics.recoveries

        crashes_survived += len(system.crash_reports)
        faults_injected += system.fault_stats.total_injected

    # Both chaos dimensions actually bit during the sweep.
    assert crashes_survived > 0
    assert faults_injected > 0


@pytest.mark.parametrize(
    "strategy", [PESSIMISTIC, OPTIMISTIC], ids=["pessimistic", "optimistic"]
)
def test_crash_during_source_outage_window(strategy):
    """A warehouse crash while a source is inside a fault crash-window
    (the source itself is down) must still recover and converge: the
    re-enqueued updates just retry against the recovering source."""
    baseline = run_scenario(strategy)
    expected = sorted(baseline.extent().rows())
    for seed in (2, 5, 9):
        fault_plan = FaultPlan.random(
            seed, ["a", "b"], horizon=5.0, transient_rate=0.4
        )
        system = run_scenario(
            strategy,
            fault_plan,
            RetryPolicy.aggressive(),
            CrashPlan("serial.pre_commit", 2),
        )
        assert system.check().consistent, f"seed {seed}"
        assert sorted(system.extent().rows()) == expected, f"seed {seed}"
        assert len(system.crash_reports) >= 1, f"seed {seed}"
