"""Strong consistency via the library's audit mode.

Convergence (the final extent matches the final sources) is necessary
but weak: a maintenance algorithm could wander through nonsense states
in between.  The paper claims Dyno achieves *strong consistency* — the
view moves through states that each reflect the sources after a legal
prefix of the updates.  :class:`repro.views.audit.AuditingScheduler`
checks exactly that after every maintained unit; these tests drive it
over mixed storms.
"""

import pytest

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.views.audit import AuditingScheduler, StrongConsistencyViolation


@pytest.mark.parametrize("strategy", [PESSIMISTIC, OPTIMISTIC])
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_strong_consistency_under_mixed_storm(strategy, seed):
    testbed = build_testbed(strategy, tuples_per_relation=40, seed=seed)
    scheduler = AuditingScheduler(testbed.manager, strategy)
    testbed.engine.schedule_workload(
        testbed.random_du_workload(15, 0.0, 0.3, seed=seed + 1)
    )
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(3, 0.5, 9.0, seed=seed + 2)
    )
    while scheduler.step():
        pass
    # the invariant really ran (batch merges can reduce unit count)
    assert scheduler.audited_states >= 5


def test_strong_consistency_du_only():
    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=40, seed=5)
    scheduler = AuditingScheduler(testbed.manager, PESSIMISTIC)
    testbed.engine.schedule_workload(
        testbed.random_du_workload(20, 0.0, 0.05, seed=6)
    )
    while scheduler.step():
        pass
    assert scheduler.audited_states == 20


def test_violation_is_detected():
    """Sanity for the auditor itself: corrupt the extent, expect a
    StrongConsistencyViolation."""
    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=20, seed=9)
    scheduler = AuditingScheduler(testbed.manager, PESSIMISTIC)
    testbed.engine.schedule_workload(
        testbed.random_du_workload(3, 0.0, 0.5, seed=10)
    )

    # sabotage: silently drop one row from the materialized extent
    row = next(iter(testbed.manager.mv.extent))
    testbed.manager.mv.extent.delete(row)

    with pytest.raises(StrongConsistencyViolation):
        while scheduler.step():
            pass
