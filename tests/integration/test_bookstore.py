"""End-to-end reproductions of the paper's worked examples.

* Example 1.a — the duplication anomaly, fixed by compensation;
* Example 1.b — the broken-query anomaly (XML remapping collapses
  Store+Item into StoreItems), fixed by Dyno with the Query (3) rewrite;
* Section 3.5 — the cyclic schema changes SC1/SC2, merged and processed
  as one batch, yielding exactly the Query (5) definition.
"""

import pytest

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import NAIVE, OPTIMISTIC, PESSIMISTIC
from repro.sim.costs import CostModel
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    RestructureRelations,
)
from repro.sources.workload import FixedUpdate, Workload
from repro.views.consistency import check_convergence
from tests.conftest import (
    CATALOG_SCHEMA,
    ITEM_SCHEMA,
    STOREITEMS_SCHEMA,
    build_bookstore,
)

NEW_BOOK_CATALOG = DataUpdate.insert(
    CATALOG_SCHEMA,
    [("Data Integration Guide", "Adams", "Engineering", "Princeton", "new")],
)


def new_item() -> DataUpdate:
    return DataUpdate.insert(
        ITEM_SCHEMA, [(1, "Data Integration Guide", "Adams", 35.99)]
    )


def storeitems_restructure() -> RestructureRelations:
    return RestructureRelations(
        dropped=("Store", "Item"),
        new_schema=STOREITEMS_SCHEMA,
        new_rows=(
            ("Amazon", "Databases", "Gray", 50.0),
            ("BN", "Compilers", "Aho", 40.0),
        ),
    )


def schedule(engine, items):
    workload = Workload()
    for at, source, payload in items:
        workload.add(at, source, FixedUpdate(payload))
    engine.schedule_workload(workload)


class TestExample1a:
    """Duplication anomaly: concurrent DU leaks into the probe answer."""

    def test_compensation_prevents_duplicate(self):
        engine, manager = build_bookstore(CostModel.paper_default())
        schedule(
            engine,
            [
                (0.0, "library", NEW_BOOK_CATALOG),
                # commits inside the catalog-DU's probe window
                (0.005, "retailer", new_item()),
            ],
        )
        DynoScheduler(manager, PESSIMISTIC).run()
        report = check_convergence(manager)
        assert report.consistent, report.summary()
        matches = [
            row
            for row in manager.mv.extent
            if "Data Integration Guide" in row
        ]
        assert len(matches) == 1  # not duplicated


class TestExample1b:
    """Broken query anomaly: the XML remapping breaks Query (2)."""

    def test_naive_loses_the_update(self):
        engine, manager = build_bookstore(CostModel.paper_default())
        schedule(
            engine,
            [
                (0.0, "library", NEW_BOOK_CATALOG),
                (0.0, "retailer", storeitems_restructure()),
            ],
        )
        stats = DynoScheduler(manager, NAIVE).run()
        assert stats.skipped_updates >= 1

    @pytest.mark.parametrize("strategy", [PESSIMISTIC, OPTIMISTIC])
    def test_dyno_reorders_and_produces_query_3_shape(self, strategy):
        engine, manager = build_bookstore(CostModel.paper_default())
        schedule(
            engine,
            [
                (0.0, "library", NEW_BOOK_CATALOG),
                (0.0, "retailer", storeitems_restructure()),
            ],
        )
        DynoScheduler(manager, strategy).run()
        query = manager.view.query
        assert query.references_relation("retailer", "StoreItems")
        assert not query.references_relation("retailer", "Store")
        report = check_convergence(manager)
        assert report.consistent, report.summary()


class TestSection35Cycle:
    """SC1 (restructure) + SC2 (drop Review): mutually-invalidating
    rewrites form a dependency cycle; the batch yields Query (5)."""

    def test_cycle_merged_and_query_5_produced(self):
        engine, manager = build_bookstore(CostModel.paper_default())
        restructure = RestructureRelations(
            dropped=("Store", "Item"),
            new_schema=STOREITEMS_SCHEMA,
            new_rows=(
                ("Amazon", "Databases", "Gray", 50.0),
                ("BN", "Compilers", "Aho", 40.0),
                ("Amazon", "Data Integration Guide", "Adams", 35.99),
            ),
        )
        schedule(
            engine,
            [
                (0.0, "library", NEW_BOOK_CATALOG),
                (0.0, "retailer", new_item()),
                (0.02, "retailer", restructure),
                (0.03, "library", DropAttribute("Catalog", "Review")),
            ],
        )
        DynoScheduler(manager, PESSIMISTIC).run()
        query = manager.view.query
        # Query (5): StoreItems ⋈ Catalog ⋈ ReaderDigest
        assert query.references_relation("retailer", "StoreItems")
        assert query.references_relation("library", "Catalog")
        assert query.references_relation("digest", "ReaderDigest")
        join_attr_names = {
            frozenset(ref.name for ref in join.references())
            for join in query.joins
        }
        assert frozenset({"Book", "Title"}) in join_attr_names
        assert frozenset({"Title", "Article"}) in join_attr_names
        assert engine.metrics.cycle_merges >= 1
        report = check_convergence(manager)
        assert report.consistent, report.summary()
        # the Review column is now sourced from ReaderDigest.Comments
        rows = sorted(manager.mv.extent.rows())
        assert any("timely" in row for row in rows)

    def test_final_extent_matches_paper_data(self):
        engine, manager = build_bookstore(CostModel.paper_default())
        restructure = RestructureRelations(
            dropped=("Store", "Item"),
            new_schema=STOREITEMS_SCHEMA,
            new_rows=(
                ("Amazon", "Databases", "Gray", 50.0),
                ("Amazon", "Data Integration Guide", "Adams", 35.99),
            ),
        )
        schedule(
            engine,
            [
                (0.0, "library", NEW_BOOK_CATALOG),
                (0.0, "retailer", restructure),
                (0.01, "library", DropAttribute("Catalog", "Review")),
            ],
        )
        DynoScheduler(manager, PESSIMISTIC).run()
        rows = set(manager.mv.extent.rows())
        assert (
            "Amazon",
            "Data Integration Guide",
            "Adams",
            35.99,
            "Princeton",
            "Engineering",
            "timely",
        ) in rows
