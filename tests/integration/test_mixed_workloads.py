"""Deterministic mixed-workload integration runs on the testbed."""

import pytest

from repro.core.strategies import BLIND_MERGE, OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import (
    build_testbed,
    fixed_drop_attribute,
    fixed_rename_relation,
    relation_name,
    source_of_relation,
)
from repro.sources.workload import Workload
from repro.views.consistency import check_convergence


class TestTestbedShape:
    def test_six_relations_over_three_sources(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=10)
        assert len(testbed.engine.sources) == 3
        total = sum(
            len(source.catalog)
            for source in testbed.engine.sources.values()
        )
        assert total == 6

    def test_one_to_one_join_view(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=10)
        assert len(testbed.manager.mv.extent) == 10
        assert testbed.manager.mv.extent.schema.arity == 24

    def test_source_of_relation_round_robin(self):
        assert source_of_relation(0) == "src1"
        assert source_of_relation(1) == "src1"
        assert source_of_relation(2) == "src2"
        assert source_of_relation(5) == "src3"

    def test_current_source_tracks_renames(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=10)
        assert testbed.current_source_of("R1") == "src1"
        workload = Workload()
        workload.add(0.0, "src1", fixed_rename_relation(0))
        testbed.engine.schedule_workload(workload)
        testbed.engine.drain_events()
        assert testbed.current_source_of("R1") == "src1"
        with pytest.raises(KeyError):
            testbed.current_source_of("R99")


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        results = []
        for _repeat in range(2):
            testbed = build_testbed(
                PESSIMISTIC, tuples_per_relation=50, seed=9
            )
            testbed.engine.schedule_workload(
                testbed.random_du_workload(20, 0.0, 0.2, seed=3)
            )
            testbed.engine.schedule_workload(
                testbed.schema_change_workload(2, 1.0, 10.0, seed=4)
            )
            testbed.run()
            results.append(
                (
                    round(testbed.metrics.maintenance_cost, 9),
                    testbed.metrics.aborts,
                    sorted(testbed.manager.mv.extent.rows())[:3],
                )
            )
        assert results[0] == results[1]


@pytest.mark.parametrize(
    "strategy", [PESSIMISTIC, OPTIMISTIC, BLIND_MERGE]
)
class TestStrategiesConverge:
    def test_dense_mixed_workload(self, strategy):
        testbed = build_testbed(strategy, tuples_per_relation=50, seed=2)
        testbed.engine.schedule_workload(
            testbed.random_du_workload(30, 0.0, 0.1, seed=5)
        )
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(4, 0.0, 8.0, seed=6)
        )
        testbed.run()
        report = check_convergence(testbed.manager)
        assert report.consistent, report.summary()

    def test_targeted_drop_and_rename(self, strategy):
        testbed = build_testbed(strategy, tuples_per_relation=50, seed=2)
        workload = Workload()
        workload.add(0.0, "src2", fixed_drop_attribute(3))
        workload.add(2.0, "src3", fixed_rename_relation(5))
        workload.add(4.0, "src1", fixed_rename_relation(0))
        testbed.engine.schedule_workload(workload)
        testbed.engine.schedule_workload(
            testbed.random_du_workload(10, 0.0, 1.0, seed=8)
        )
        testbed.run()
        report = check_convergence(testbed.manager)
        assert report.consistent, report.summary()
        # B4 was dropped: the view lost one projected column
        assert testbed.manager.mv.extent.schema.arity == 23

    def test_rename_chain_on_one_relation(self, strategy):
        from repro.sources.messages import RenameRelation
        from repro.sources.workload import FixedUpdate

        testbed = build_testbed(strategy, tuples_per_relation=50, seed=2)
        workload = Workload()
        names = ["R1", "R1__v2", "R1__v3", "R1__v4", "R1__v5"]
        for index in range(4):
            workload.add(
                index * 5.0,
                "src1",
                FixedUpdate(RenameRelation(names[index], names[index + 1])),
            )
        testbed.engine.schedule_workload(workload)
        testbed.run()
        report = check_convergence(testbed.manager)
        assert report.consistent, report.summary()
