"""Larger-scale stress runs (still seconds, not minutes)."""

import pytest

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.views.consistency import check_convergence


@pytest.mark.parametrize("strategy", [PESSIMISTIC, OPTIMISTIC])
def test_long_mixed_storm(strategy):
    """500 data updates + 20 schema changes at the worst-case interval."""
    testbed = build_testbed(strategy, tuples_per_relation=60, seed=17)
    testbed.engine.schedule_workload(
        testbed.random_du_workload(500, start=0.0, interval=0.25, seed=18)
    )
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(20, start=0.0, interval=17.0, seed=19)
    )
    testbed.run()
    assert testbed.manager.umq.is_empty()
    report = check_convergence(testbed.manager)
    assert report.consistent, report.summary()
    assert testbed.metrics.maintained_updates >= 500


def test_poisson_arrival_storm():
    """Bursty Poisson arrivals instead of uniform spacing."""
    import random

    from repro.sources.workload import (
        InsertRandomRow,
        Workload,
        poisson_arrival_times,
    )
    from repro.experiments.testbed import source_name

    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=60, seed=21)
    rng = random.Random(22)
    workload = Workload()
    for at in poisson_arrival_times(rng, rate=3.0, count=120):
        workload.add(
            at,
            source_name(rng.randrange(3)),
            InsertRandomRow(rng, key_factory=lambda r: r.randrange(1, 61)),
        )
    testbed.engine.schedule_workload(workload)
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(5, start=5.0, interval=12.0, seed=23)
    )
    testbed.run()
    report = check_convergence(testbed.manager)
    assert report.consistent, report.summary()


def test_deep_rename_chains():
    """Every relation renamed four times while updates keep flowing."""
    from repro.sources.workload import RenameRandomRelation, Workload
    import random

    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=60, seed=29)
    rng = random.Random(30)
    workload = Workload()
    at = 0.5
    for _round in range(4):
        for relation_index in range(6):
            workload.add(
                at, f"src{relation_index // 2 + 1}", RenameRandomRelation(rng)
            )
            at += 3.0
    testbed.engine.schedule_workload(workload)
    testbed.engine.schedule_workload(
        testbed.random_du_workload(60, start=0.0, interval=1.0, seed=31)
    )
    testbed.run()
    report = check_convergence(testbed.manager)
    assert report.consistent, report.summary()
