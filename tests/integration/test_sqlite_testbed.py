"""The full evaluation machinery on SQLite-backed sources."""

import pytest

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.views.consistency import check_convergence


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        build_testbed(PESSIMISTIC, tuples_per_relation=10, backend="oracle")


@pytest.mark.parametrize("strategy", [PESSIMISTIC, OPTIMISTIC])
def test_mixed_workload_on_sqlite(strategy):
    testbed = build_testbed(
        strategy, tuples_per_relation=150, backend="sqlite"
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(15, start=0.0, interval=0.3, seed=5)
    )
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(3, start=1.0, interval=8.0, seed=6)
    )
    testbed.run()
    report = check_convergence(testbed.manager)
    assert report.consistent, report.summary()


def test_backends_agree_on_final_state():
    """Same workload, both backends: identical final view extents."""
    extents = []
    for backend in ("memory", "sqlite"):
        testbed = build_testbed(
            PESSIMISTIC,
            tuples_per_relation=100,
            backend=backend,
            seed=4,
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(12, 0.0, 0.4, seed=9)
        )
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(2, 1.0, 9.0, seed=10)
        )
        testbed.run()
        extents.append(sorted(testbed.manager.mv.extent.rows()))
    assert extents[0] == extents[1]


def test_failed_commit_counted_not_fatal():
    """A stale fixed intent racing its own source's schema change is the
    source's local failure; the run continues and converges."""
    from repro.sources.messages import DropAttribute, RenameRelation
    from repro.sources.workload import FixedUpdate, Workload

    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=50)
    workload = Workload()
    workload.add(0.0, "src1", FixedUpdate(RenameRelation("R1", "R1__v2")))
    # stale: R1 no longer exists when this fires
    workload.add(1.0, "src1", FixedUpdate(DropAttribute("R1", "B1")))
    testbed.engine.schedule_workload(workload)
    testbed.run()
    assert testbed.metrics.failed_commits == 1
    assert check_convergence(testbed.manager).consistent
