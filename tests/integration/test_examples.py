"""Every shipped example must run clean and print what it promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "CREATE VIEW BookInfo" in output
    assert "consistent: view matches recompute" in output


def test_broken_query_demo():
    output = run_example("broken_query_demo.py")
    assert "naive FIFO" in output
    assert "Dyno (pessimistic)" in output
    # the cascade act must show the naive divergence
    assert "INCONSISTENT: the view definition is stale" in output


def test_cyclic_dependency():
    output = run_example("cyclic_dependency.py")
    assert "cycles merged into batches: 1" in output
    assert "ReaderDigest R" in output  # the Query (5) rewriting
    assert "consistent" in output


def test_data_grid_monitor():
    output = run_example("data_grid_monitor.py")
    assert "pessimistic" in output
    assert "naive" in output
    assert output.count("yes") >= 3  # three converging strategies


def test_multi_view_sql():
    output = run_example("multi_view_sql.py")
    assert "CREATE VIEW BookInfo" in output
    assert "CREATE VIEW CheapBooks" in output
    assert "Stock I" in output  # the rename propagated into both views


def test_abort_timeline():
    output = run_example("abort_timeline.py")
    assert "broken" in output and "abort" in output


def test_unreliable_sources():
    output = run_example("unreliable_sources.py")
    assert "quarantined 'parts'" in output
    assert "genuine broken-query flags=0" in output
    assert "extents identical to fault-free run: True" in output
    assert "faults made the run slower: True" in output
    assert "correction" in output
    assert "consistent: view matches recompute" in output
