"""End-to-end maintenance of selective views and self-join views.

The figure testbed's view is a pure equi-join; these tests exercise the
two harder query shapes the engine supports: selection predicates that
updates cross in both directions, and a relation joined with itself
(where the VM sweep's occurrence handling and the self-join
compensation rule matter).
"""

import pytest

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.relational.predicate import Comparison, attr
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType
from repro.sim.costs import CostModel
from repro.sim.engine import SimEngine
from repro.sources.messages import DataUpdate, DropAttribute
from repro.sources.source import DataSource
from repro.sources.workload import FixedUpdate, Workload
from repro.views.consistency import check_convergence
from repro.views.definition import ViewDefinition
from repro.views.manager import ViewManager

ITEM = RelationSchema.of(
    "Item",
    [
        ("SID", AttributeType.INT),
        "Book",
        "Author",
        ("Price", AttributeType.FLOAT),
    ],
)


def build_selective():
    engine = SimEngine(CostModel.paper_default())
    retailer = engine.add_source(DataSource("retailer"))
    retailer.create_relation(
        ITEM,
        [
            (1, "Databases", "Gray", 50.0),
            (2, "Compilers", "Aho", 40.0),
            (3, "Datalog", "Ullman", 30.0),
        ],
    )
    query = SPJQuery(
        relations=(RelationRef("retailer", "Item", "I"),),
        projection=(attr("I", "Book"), attr("I", "Price")),
        selection=Comparison(attr("I", "Price"), "<", 45.0),
    )
    manager = ViewManager(engine, ViewDefinition("Cheap", query))
    return engine, manager


class TestSelectiveView:
    def test_updates_crossing_the_predicate(self):
        engine, manager = build_selective()
        assert len(manager.mv.extent) == 2
        workload = Workload()
        # below the threshold: enters the view
        workload.add(
            0.0,
            "retailer",
            FixedUpdate(
                DataUpdate.insert(ITEM, [(4, "Types", "Pierce", 20.0)])
            ),
        )
        # above the threshold: invisible to the view
        workload.add(
            0.5,
            "retailer",
            FixedUpdate(
                DataUpdate.insert(ITEM, [(5, "Sicp", "Abelson", 99.0)])
            ),
        )
        # delete a matching row: leaves the view
        workload.add(
            1.0,
            "retailer",
            FixedUpdate(
                DataUpdate.delete(ITEM, [(2, "Compilers", "Aho", 40.0)])
            ),
        )
        engine.schedule_workload(workload)
        DynoScheduler(manager, PESSIMISTIC).run()
        rows = sorted(manager.mv.extent.rows())
        assert rows == [("Datalog", 30.0), ("Types", 20.0)]
        assert check_convergence(manager).consistent

    def test_dropping_the_predicate_attribute(self):
        engine, manager = build_selective()
        workload = Workload()
        workload.add(
            1.0, "retailer", FixedUpdate(DropAttribute("Item", "Price"))
        )
        engine.schedule_workload(workload)
        DynoScheduler(manager, PESSIMISTIC).run()
        # Price pruned from projection AND selection: all books qualify
        assert manager.view.version == 2
        assert len(manager.mv.extent) == 3
        assert check_convergence(manager).consistent


def build_selfjoin():
    engine = SimEngine(CostModel.paper_default())
    retailer = engine.add_source(DataSource("retailer"))
    retailer.create_relation(
        ITEM,
        [
            (1, "Databases", "Gray", 50.0),
            (2, "Transactions", "Gray", 45.0),
            (3, "Compilers", "Aho", 40.0),
        ],
    )
    # pairs of books by the same author
    query = SPJQuery(
        relations=(
            RelationRef("retailer", "Item", "L"),
            RelationRef("retailer", "Item", "R"),
        ),
        projection=(attr("L", "Book"), attr("R", "Book")),
        joins=(JoinCondition(attr("L", "Author"), attr("R", "Author")),),
    )
    manager = ViewManager(engine, ViewDefinition("SameAuthor", query))
    return engine, manager


class TestSelfJoinView:
    def test_initial_extent(self):
        _engine, manager = build_selfjoin()
        # Gray x Gray gives 4 pairs, Aho x Aho gives 1
        assert len(manager.mv.extent) == 5

    @pytest.mark.parametrize("strategy", [PESSIMISTIC, OPTIMISTIC])
    def test_insert_maintains_both_occurrences(self, strategy):
        engine, manager = build_selfjoin()
        workload = Workload()
        workload.add(
            0.0,
            "retailer",
            FixedUpdate(
                DataUpdate.insert(ITEM, [(4, "Views", "Gray", 10.0)])
            ),
        )
        engine.schedule_workload(workload)
        DynoScheduler(manager, strategy).run()
        # Gray now has 3 books -> 9 pairs; plus Aho's 1 pair
        assert len(manager.mv.extent) == 10
        assert check_convergence(manager).consistent

    def test_delete_maintains_both_occurrences(self):
        engine, manager = build_selfjoin()
        workload = Workload()
        workload.add(
            0.0,
            "retailer",
            FixedUpdate(
                DataUpdate.delete(
                    ITEM, [(2, "Transactions", "Gray", 45.0)]
                )
            ),
        )
        engine.schedule_workload(workload)
        DynoScheduler(manager, PESSIMISTIC).run()
        assert len(manager.mv.extent) == 2  # Gray solo pair + Aho pair
        assert check_convergence(manager).consistent

    def test_concurrent_inserts_same_author(self):
        """Two close inserts of the same author: the self-join
        compensation rule must prevent double counting."""
        engine, manager = build_selfjoin()
        workload = Workload()
        workload.add(
            0.0,
            "retailer",
            FixedUpdate(
                DataUpdate.insert(ITEM, [(4, "Views", "Gray", 10.0)])
            ),
        )
        workload.add(
            0.01,  # inside the first maintenance's probe window
            "retailer",
            FixedUpdate(
                DataUpdate.insert(ITEM, [(5, "Cubes", "Gray", 12.0)])
            ),
        )
        engine.schedule_workload(workload)
        DynoScheduler(manager, PESSIMISTIC).run()
        # Gray has 4 books -> 16 pairs; Aho 1 pair
        assert len(manager.mv.extent) == 17
        report = check_convergence(manager)
        assert report.consistent, report.summary()
