"""The DyDa facade."""

import pytest

from repro.dyda import DyDaError, DyDaSystem
from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType
from repro.sim.costs import CostModel
from repro.sources.messages import DataUpdate, DropAttribute, RenameRelation
from repro.sources.sqlite_source import SqliteDataSource

ITEM = RelationSchema.of(
    "Item",
    [("SID", AttributeType.INT), "Book", ("Price", AttributeType.FLOAT)],
)
CATALOG = RelationSchema.of("Catalog", ["Title", "Publisher"])

VIEW_SQL = """
CREATE VIEW BookInfo AS
SELECT I.Book, I.Price, C.Publisher
FROM retailer.Item I, library.Catalog C
WHERE I.Book = C.Title
"""

CHEAP_SQL = """
CREATE VIEW Cheap AS
SELECT I.Book FROM retailer.Item I WHERE I.Price < 45
"""


def build(*views: str, **kwargs) -> DyDaSystem:
    system = DyDaSystem(cost_model=CostModel.free(), **kwargs)
    retailer = system.add_source("retailer")
    retailer.create_relation(
        ITEM, [(1, "Databases", 50.0), (2, "Compilers", 40.0)]
    )
    library = system.add_source("library")
    library.create_relation(
        CATALOG, [("Databases", "MIT"), ("Compilers", "AW")]
    )
    for view in views or (VIEW_SQL,):
        system.define_view(view)
    return system


class TestLifecycle:
    def test_views_before_sources_rejected(self):
        system = DyDaSystem()
        with pytest.raises(DyDaError):
            system.run()  # no views at all

    def test_sources_after_start_rejected(self):
        system = build()
        system.run()
        with pytest.raises(DyDaError):
            system.add_source("late")

    def test_views_after_start_rejected(self):
        system = build()
        system.run()
        with pytest.raises(DyDaError):
            system.define_view(CHEAP_SQL)

    def test_unknown_backend_rejected(self):
        system = DyDaSystem()
        with pytest.raises(DyDaError):
            system.add_source("x", backend="oracle8i")

    def test_sqlite_backend(self):
        system = DyDaSystem(cost_model=CostModel.free())
        source = system.add_source("retailer", backend="sqlite")
        assert isinstance(source, SqliteDataSource)


class TestSingleView:
    def test_initial_extent(self):
        system = build()
        assert len(system.extent()) == 2
        assert system.definition().name == "BookInfo"

    def test_commit_and_run(self):
        system = build()
        system.commit(
            "retailer", DataUpdate.insert(ITEM, [(3, "Datalog", 30.0)])
        )
        system.commit(
            "library", DataUpdate.insert(CATALOG, [("Datalog", "PH")])
        )
        system.run()
        assert len(system.extent()) == 3
        assert system.check().consistent

    def test_schedule_and_run(self):
        system = build()
        system.schedule(
            2.0, "retailer", DataUpdate.insert(ITEM, [(3, "Datalog", 30.0)])
        )
        system.schedule(3.0, "retailer", RenameRelation("Item", "Stock"))
        system.run()
        assert system.definition().query.references_relation(
            "retailer", "Stock"
        )
        assert system.check().consistent
        assert system.now >= 3.0

    def test_unknown_source_rejected(self):
        system = build()
        with pytest.raises(DyDaError):
            system.commit("ghost", DataUpdate.insert(ITEM, []))
        with pytest.raises(DyDaError):
            system.schedule(1.0, "ghost", DataUpdate.insert(ITEM, []))

    def test_metrics_and_stats_exposed(self):
        system = build()
        system.commit(
            "retailer", DataUpdate.insert(ITEM, [(3, "Datalog", 30.0)])
        )
        system.run()
        assert system.metrics.maintained_updates == 1
        assert system.stats.iterations >= 1


class TestMultiView:
    def test_two_views_one_stream(self):
        system = build(VIEW_SQL, CHEAP_SQL)
        assert len(system.extent("Cheap")) == 1
        system.commit(
            "retailer", DataUpdate.insert(ITEM, [(3, "Datalog", 30.0)])
        )
        system.commit(
            "library", DataUpdate.insert(CATALOG, [("Datalog", "PH")])
        )
        system.run()
        assert len(system.extent("BookInfo")) == 3
        assert len(system.extent("Cheap")) == 2
        assert system.check("BookInfo").consistent
        assert system.check("Cheap").consistent

    def test_unnamed_extent_ambiguous(self):
        system = build(VIEW_SQL, CHEAP_SQL)
        with pytest.raises(DyDaError):
            system.extent()

    def test_unknown_view_rejected(self):
        system = build()
        with pytest.raises(DyDaError):
            system.extent("Nope")

    def test_sc_flows_to_both(self):
        system = build(VIEW_SQL, CHEAP_SQL)
        system.schedule(1.0, "retailer", DropAttribute("Item", "Price"))
        system.run()
        # Price was pruned from BookInfo; Cheap lost its predicate
        # source attribute, so its relation was evolved out... which
        # would empty it — instead the view keeps Book (selection
        # pruned).
        assert system.check("BookInfo").consistent
        assert system.check("Cheap").consistent
