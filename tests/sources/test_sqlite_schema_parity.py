"""Backend parity on broken-query detection after schema changes.

The Dyno anomaly detector reasons about broken queries purely from the
:class:`BrokenQueryError` contract; a backend that detects them
differently would skew detection.  For every ALTER-TABLE-backed schema
change path of :class:`SqliteDataSource` — drop attribute, rename
attribute, rename relation, drop relation — this module applies the
identical change to an in-memory :class:`DataSource` twin and asserts
both backends agree query-by-query: same answers where the query still
parses against the live schema, and :class:`BrokenQueryError` from both
(never just one) where it does not.

The whole module runs twice — once per relational executor (the naive
oracle and the compiled/columnar kernel) — because the in-memory twin
answers through :func:`repro.relational.execute`: backend parity must
hold regardless of which evaluator is active.
"""

import pytest

from repro.relational.executor import executor_mode, set_executor_mode
from repro.relational.predicate import attr
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType
from repro.sources.errors import BrokenQueryError
from repro.sources.messages import (
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
)
from repro.sources.source import DataSource
from repro.sources.sqlite_source import SqliteDataSource

ITEM = RelationSchema.of(
    "Item",
    [
        ("SID", AttributeType.INT),
        "Book",
        ("Price", AttributeType.FLOAT),
    ],
)
ROWS = [(1, "Databases", 50.0), (2, "Compilers", 40.0)]


@pytest.fixture(autouse=True, params=["naive", "compiled"])
def each_executor(request):
    """Run every parity test under both relational executors."""
    previous = executor_mode()
    set_executor_mode(request.param)
    yield request.param
    set_executor_mode(previous)


def twins():
    memory = DataSource("retailer")
    sqlite = SqliteDataSource("retailer")
    for source in (memory, sqlite):
        source.create_relation(ITEM, ROWS)
    return memory, sqlite


def query_over(relation: str, *attributes: str) -> SPJQuery:
    return SPJQuery(
        relations=(RelationRef("retailer", relation, "I"),),
        projection=tuple(attr("I", name) for name in attributes),
    )


def assert_parity(memory, sqlite, query):
    """Both backends answer identically or both flag the query broken."""
    try:
        expected = sorted(memory.execute(query).rows())
    except BrokenQueryError:
        with pytest.raises(BrokenQueryError):
            sqlite.execute(query)
        return None
    got = sorted(sqlite.execute(query).rows())
    assert got == expected
    return expected


PROBES = [
    query_over("Item", "Book", "Price"),
    query_over("Item", "Book"),
    query_over("Item", "Price"),
    query_over("Item", "SID"),
    query_over("Stock", "Book"),
]


def apply_both(memory, sqlite, update):
    committed = [memory.commit(update), sqlite.commit(update)]
    assert committed[0].payload == committed[1].payload


@pytest.mark.parametrize(
    "update",
    [
        DropAttribute("Item", "Price"),
        RenameAttribute("Item", "Price", "Cost"),
        RenameRelation("Item", "Stock"),
        DropRelation("Item"),
    ],
    ids=["drop-attr", "rename-attr", "rename-rel", "drop-rel"],
)
def test_broken_query_parity_after_schema_change(update):
    memory, sqlite = twins()
    for probe in PROBES:
        assert_parity(memory, sqlite, probe)  # pre-change agreement
    apply_both(memory, sqlite, update)
    answered = broken = 0
    for probe in PROBES:
        if assert_parity(memory, sqlite, probe) is None:
            broken += 1
        else:
            answered += 1
    # the change must actually split the probe set: some probes break,
    # the untouched ones keep answering (Section 3.1 — only referenced
    # schema elements break a query)
    assert broken > 0
    if not isinstance(update, DropRelation):
        assert answered > 0


def test_rename_attribute_answers_under_new_name():
    memory, sqlite = twins()
    apply_both(memory, sqlite, RenameAttribute("Item", "Price", "Cost"))
    probe = query_over("Item", "Book", "Cost")
    assert assert_parity(memory, sqlite, probe) == [
        ("Compilers", 40.0),
        ("Databases", 50.0),
    ]
    with pytest.raises(BrokenQueryError):
        memory.execute(query_over("Item", "Price"))
    with pytest.raises(BrokenQueryError):
        sqlite.execute(query_over("Item", "Price"))


def test_rename_relation_answers_under_new_name():
    memory, sqlite = twins()
    apply_both(memory, sqlite, RenameRelation("Item", "Stock"))
    probe = query_over("Stock", "Book", "Price")
    assert assert_parity(memory, sqlite, probe) == [
        ("Compilers", 40.0),
        ("Databases", 50.0),
    ]


def test_chained_changes_keep_parity():
    """A realistic SC burst: rename the relation, rename an attribute,
    then drop another — parity must hold at every intermediate step."""
    memory, sqlite = twins()
    steps = [
        RenameRelation("Item", "Stock"),
        RenameAttribute("Stock", "Price", "Cost"),
        DropAttribute("Stock", "SID"),
    ]
    probes = PROBES + [
        query_over("Stock", "Cost"),
        query_over("Stock", "Book", "Cost"),
        query_over("Stock", "SID"),
    ]
    for update in steps:
        apply_both(memory, sqlite, update)
        for probe in probes:
            assert_parity(memory, sqlite, probe)
    # end state: only Book and Cost survive, under the new names
    assert assert_parity(
        memory, sqlite, query_over("Stock", "Book", "Cost")
    ) == [("Compilers", 40.0), ("Databases", 50.0)]


def test_dropped_relation_breaks_identically():
    memory, sqlite = twins()
    apply_both(memory, sqlite, DropRelation("Item"))
    for probe in PROBES:
        with pytest.raises(BrokenQueryError):
            memory.execute(probe)
        with pytest.raises(BrokenQueryError):
            sqlite.execute(probe)
