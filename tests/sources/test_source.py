"""Autonomous data sources: commits, queries, broken-query detection."""

import pytest

from repro.relational.predicate import InPredicate, attr
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import Attribute, RelationSchema
from repro.sources.errors import BrokenQueryError, UpdateApplicationError
from repro.sources.messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
)
from repro.sources.source import DataSource

ITEM = RelationSchema.of("Item", ["SID", "Book", "Author"])


@pytest.fixture
def source() -> DataSource:
    source = DataSource("retailer")
    source.create_relation(ITEM, [("1", "DB", "Gray"), ("2", "CC", "Aho")])
    return source


def item_query(projection=("SID", "Book"), relation="Item") -> SPJQuery:
    return SPJQuery(
        relations=(RelationRef("retailer", relation, "I"),),
        projection=tuple(attr("I", name) for name in projection),
    )


class TestCommits:
    def test_data_update_applies(self, source):
        update = DataUpdate.insert(ITEM, [("3", "X", "Y")])
        message = source.commit(update, at=1.5)
        assert ("3", "X", "Y") in source.catalog.table("Item")
        assert message.seqno == 1
        assert message.committed_at == 1.5

    def test_seqno_increments(self, source):
        first = source.commit(DataUpdate.insert(ITEM, []))
        second = source.commit(DataUpdate.insert(ITEM, []))
        assert (first.seqno, second.seqno) == (1, 2)

    def test_commit_logged(self, source):
        source.commit(DataUpdate.insert(ITEM, []))
        assert len(source.log) == 1

    def test_subscribers_notified_after_apply(self, source):
        seen = []

        def subscriber(message):
            # the change is already applied when the wrapper hears of it
            seen.append(source.has_relation("Item2"))

        source.subscribe(subscriber)
        source.commit(RenameRelation("Item", "Item2"))
        assert seen == [True]

    def test_rename_relation(self, source):
        source.commit(RenameRelation("Item", "Books"))
        assert source.has_relation("Books")
        assert not source.has_relation("Item")

    def test_rename_attribute(self, source):
        source.commit(RenameAttribute("Item", "Book", "Title"))
        assert "Title" in source.schema_of("Item")

    def test_drop_attribute(self, source):
        source.commit(DropAttribute("Item", "Author"))
        assert "Author" not in source.schema_of("Item")
        assert ("1", "DB") in source.catalog.table("Item")

    def test_add_attribute(self, source):
        source.commit(AddAttribute("Item", Attribute("Year"), "2004"))
        assert ("1", "DB", "Gray", "2004") in source.catalog.table("Item")

    def test_drop_relation_snapshots_extent(self, source):
        change = DropRelation("Item")
        source.commit(change)
        assert not source.has_relation("Item")
        assert change.dropped_extent is not None
        assert ("1", "DB", "Gray") in change.dropped_extent

    def test_create_relation(self, source):
        source.commit(
            CreateRelation(RelationSchema.of("New", ["a"]), rows=(("x",),))
        )
        assert ("x",) in source.catalog.table("New")

    def test_restructure(self, source):
        new_schema = RelationSchema.of("Flat", ["SID", "Book"])
        change = RestructureRelations(
            dropped=("Item",),
            new_schema=new_schema,
            new_rows=(("1", "DB"),),
        )
        source.commit(change)
        assert source.has_relation("Flat")
        assert not source.has_relation("Item")
        assert "Item" in change.dropped_extents

    def test_bad_update_wrapped(self, source):
        with pytest.raises(UpdateApplicationError):
            source.commit(RenameRelation("Nope", "X"))

    def test_unknown_update_type_rejected(self, source):
        class Weird:
            def describe(self):
                return "weird"

        with pytest.raises(UpdateApplicationError):
            source.commit(Weird())


class TestQueries:
    def test_query_current_state(self, source):
        result = source.execute(item_query())
        assert len(result) == 2

    def test_query_sees_concurrent_commits(self, source):
        source.commit(DataUpdate.insert(ITEM, [("3", "X", "Y")]))
        result = source.execute(item_query())
        assert len(result) == 3  # the leak that compensation must undo

    def test_missing_relation_breaks(self, source):
        source.commit(RenameRelation("Item", "Books"))
        with pytest.raises(BrokenQueryError) as excinfo:
            source.execute(item_query())
        assert excinfo.value.source == "retailer"

    def test_missing_attribute_breaks(self, source):
        source.commit(DropAttribute("Item", "Book"))
        with pytest.raises(BrokenQueryError):
            source.execute(item_query())

    def test_unreferenced_attribute_change_does_not_break(self, source):
        # Definition 2's note: an SC touching attributes the query does
        # not include must not break the query.
        source.commit(DropAttribute("Item", "Author"))
        result = source.execute(item_query(projection=("SID", "Book")))
        assert len(result) == 2

    def test_wrong_source_relation_breaks(self, source):
        query = SPJQuery(
            relations=(RelationRef("library", "Catalog", "C"),),
            projection=(attr("C", "Title"),),
        )
        with pytest.raises(BrokenQueryError):
            source.execute(query)

    def test_in_probe(self, source):
        query = SPJQuery(
            relations=(RelationRef("retailer", "Item", "I"),),
            projection=(attr("I", "Book"),),
            selection=InPredicate(attr("I", "SID"), frozenset({"1"})),
        )
        assert source.execute(query).rows() == [("DB",)]


class TestIntrospection:
    def test_total_rows(self, source):
        assert source.total_rows() == 2

    def test_repr(self, source):
        assert "Item" in repr(source)
