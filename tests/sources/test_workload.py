"""Workload intents: materialization against live schemas, determinism."""

import random

import pytest

from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    RenameAttribute,
    RenameRelation,
)
from repro.sources.source import DataSource
from repro.sources.workload import (
    DeleteRandomRow,
    DropRandomAttribute,
    FixedUpdate,
    InsertRandomRow,
    RenameRandomAttribute,
    RenameRandomRelation,
    Workload,
    WorkloadItem,
    random_row,
    random_value,
)

R = RelationSchema.of(
    "R",
    [
        ("k", AttributeType.INT),
        ("s", AttributeType.STRING),
        ("f", AttributeType.FLOAT),
        ("b", AttributeType.BOOL),
    ],
)


@pytest.fixture
def source() -> DataSource:
    source = DataSource("s")
    source.create_relation(R, [(1, "a", 1.0, True), (2, "b", 2.0, False)])
    return source


class TestValueGeneration:
    def test_random_value_types(self):
        rng = random.Random(1)
        assert isinstance(random_value(rng, AttributeType.INT), int)
        assert isinstance(random_value(rng, AttributeType.FLOAT), float)
        assert isinstance(random_value(rng, AttributeType.STRING), str)
        assert isinstance(random_value(rng, AttributeType.BOOL), bool)

    def test_random_row_matches_schema(self):
        row = random_row(random.Random(1), R)
        assert len(row) == 4
        R.attributes[0].type.validate(row[0])

    def test_determinism(self):
        assert random_row(random.Random(5), R) == random_row(
            random.Random(5), R
        )


class TestInsertIntent:
    def test_insert_valid_row(self, source):
        update = InsertRandomRow(random.Random(1)).materialize(source)
        assert isinstance(update, DataUpdate)
        source.commit(update)  # applies cleanly

    def test_key_factory_controls_first_column(self, source):
        intent = InsertRandomRow(random.Random(1), key_factory=lambda r: 42)
        update = intent.materialize(source)
        row = next(iter(update.delta.rows()))
        assert row[0] == 42

    def test_specific_relation(self, source):
        update = InsertRandomRow(
            random.Random(1), relation="R"
        ).materialize(source)
        assert update.relation == "R"

    def test_empty_source_returns_none(self):
        assert InsertRandomRow(random.Random(1)).materialize(
            DataSource("empty")
        ) is None

    def test_stale_relation_falls_back(self, source):
        update = InsertRandomRow(
            random.Random(1), relation="Gone"
        ).materialize(source)
        assert update.relation == "R"


class TestDeleteIntent:
    def test_deletes_existing_row(self, source):
        update = DeleteRandomRow(random.Random(2)).materialize(source)
        assert isinstance(update, DataUpdate)
        source.commit(update)
        assert source.total_rows() == 1

    def test_empty_table_returns_none(self):
        empty = DataSource("e")
        empty.create_relation(R)
        assert DeleteRandomRow(random.Random(1)).materialize(empty) is None

    def test_key_filter_restricts_victims(self, source):
        intent = DeleteRandomRow(
            random.Random(3), key_filter=lambda key: key == 2
        )
        for _ in range(5):
            update = intent.materialize(source)
            row = next(iter(update.delta.rows()))
            assert row[0] == 2

    def test_key_filter_with_no_candidates_returns_none(self, source):
        intent = DeleteRandomRow(
            random.Random(3), key_filter=lambda key: key == 99
        )
        assert intent.materialize(source) is None


class TestHotKeyDomainDeletes:
    def test_domain_deletes_are_not_degenerate(self):
        """Regression: under ``key_domain`` the delete stream must pick
        victims *inside* the domain.  Deletes used to draw uniformly
        from the full relation, so on a large relation with a narrow
        hot domain nearly every delete hit a cold key — the hot-key
        workload silently lost its delete effects."""
        from repro.core.strategies import PESSIMISTIC
        from repro.experiments.testbed import build_testbed

        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=200)
        workload = testbed.random_du_workload(
            60, start=0.0, interval=0.01, seed=5,
            insert_fraction=0.5, key_domain=8,
        )
        deletes = [
            item for item in workload.items
            if isinstance(item.intent, DeleteRandomRow)
        ]
        assert deletes, "workload drew no deletes at all"
        hot = 0
        for item in deletes:
            update = item.intent.materialize(
                testbed.engine.sources[item.source_name]
            )
            if update is None:
                continue
            hot += 1
            for row in update.delta.rows():
                assert 1 <= row[0] <= 8
        # Most deletes actually fire inside the hot domain (seeded rows
        # cover every key, so candidates always exist at the start).
        assert hot >= len(deletes) // 2


class TestSchemaChangeIntents:
    def test_drop_random_attribute_protects_key(self, source):
        for seed in range(10):
            update = DropRandomAttribute(random.Random(seed)).materialize(
                source
            )
            assert isinstance(update, DropAttribute)
            assert update.attribute != "k"

    def test_drop_without_protection_may_take_first(self, source):
        seen = set()
        for seed in range(30):
            update = DropRandomAttribute(
                random.Random(seed), protect_first=False
            ).materialize(source)
            seen.add(update.attribute)
        assert "k" in seen

    def test_rename_relation_versions(self, source):
        update = RenameRandomRelation(random.Random(1)).materialize(source)
        assert isinstance(update, RenameRelation)
        assert update.new == "R__v2"
        source.commit(update)
        update2 = RenameRandomRelation(random.Random(1)).materialize(source)
        assert update2.old == "R__v2" and update2.new == "R__v3"

    def test_rename_attribute_versions(self, source):
        update = RenameRandomAttribute(random.Random(3)).materialize(source)
        assert isinstance(update, RenameAttribute)
        assert update.new.endswith("__v2")

    def test_fixed_update_passthrough(self, source):
        payload = DropAttribute("R", "s")
        assert FixedUpdate(payload).materialize(source) is payload


class TestWorkload:
    def test_sorted_by_time(self):
        workload = Workload()
        workload.add(2.0, "s", FixedUpdate(DropAttribute("R", "s")))
        workload.add(1.0, "s", FixedUpdate(DropAttribute("R", "f")))
        assert [item.at for item in workload] == [1.0, 2.0]

    def test_span(self):
        workload = Workload()
        assert workload.span == 0.0
        workload.add(1.0, "s", FixedUpdate(DropAttribute("R", "s")))
        workload.add(5.0, "s", FixedUpdate(DropAttribute("R", "f")))
        assert workload.span == 4.0

    def test_extend_and_len(self):
        workload = Workload()
        workload.extend(
            [WorkloadItem(0.0, "s", FixedUpdate(DropAttribute("R", "s")))]
        )
        assert len(workload) == 1


class TestPoissonArrivals:
    def test_count_and_monotonicity(self):
        from repro.sources.workload import poisson_arrival_times

        times = poisson_arrival_times(random.Random(1), rate=2.0, count=50)
        assert len(times) == 50
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 0.0

    def test_mean_interarrival_close_to_rate(self):
        from repro.sources.workload import poisson_arrival_times

        rate = 4.0
        times = poisson_arrival_times(
            random.Random(2), rate=rate, count=2000
        )
        mean_gap = times[-1] / len(times)
        assert abs(mean_gap - 1.0 / rate) < 0.02

    def test_start_offset(self):
        from repro.sources.workload import poisson_arrival_times

        times = poisson_arrival_times(
            random.Random(3), rate=1.0, count=5, start=100.0
        )
        assert all(at > 100.0 for at in times)

    def test_invalid_rate_rejected(self):
        from repro.sources.workload import poisson_arrival_times

        with pytest.raises(ValueError):
            poisson_arrival_times(random.Random(1), rate=0.0, count=1)
