"""Wrappers forward committed updates to their sink."""

from repro.relational.schema import RelationSchema
from repro.sources.messages import DataUpdate
from repro.sources.source import DataSource
from repro.sources.wrapper import Wrapper

R = RelationSchema.of("R", ["a"])


def test_forwarding():
    source = DataSource("s")
    source.create_relation(R)
    received = []
    wrapper = Wrapper(source, received.append)
    source.commit(DataUpdate.insert(R, [("x",)]), at=2.0)
    assert len(received) == 1
    assert received[0].source == "s"
    assert received[0].committed_at == 2.0
    assert wrapper.forwarded == 1


def test_multiple_wrappers_all_receive():
    source = DataSource("s")
    source.create_relation(R)
    first, second = [], []
    Wrapper(source, first.append)
    Wrapper(source, second.append)
    source.commit(DataUpdate.insert(R, [("x",)]))
    assert len(first) == len(second) == 1


def test_repr_mentions_source():
    source = DataSource("s")
    wrapper = Wrapper(source, lambda message: None)
    assert "s" in repr(wrapper)
