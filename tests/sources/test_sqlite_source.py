"""SQLite-backed sources: same contract, real SQL engine."""

import pytest

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import PESSIMISTIC
from repro.relational.predicate import InPredicate, attr
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType
from repro.sim.costs import CostModel
from repro.sim.engine import SimEngine
from repro.sources.errors import BrokenQueryError, UpdateApplicationError
from repro.sources.messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
)
from repro.sources.sqlite_source import SqliteDataSource
from repro.views.consistency import check_convergence
from repro.views.definition import ViewDefinition
from repro.views.manager import ViewManager

ITEM = RelationSchema.of(
    "Item",
    [
        ("SID", AttributeType.INT),
        "Book",
        ("Price", AttributeType.FLOAT),
        ("InStock", AttributeType.BOOL),
    ],
)


@pytest.fixture
def source() -> SqliteDataSource:
    source = SqliteDataSource("retailer")
    source.create_relation(
        ITEM,
        [(1, "Databases", 50.0, True), (2, "Compilers", 40.0, False)],
    )
    return source


class TestStorage:
    def test_create_and_materialize(self, source):
        table = source.catalog.table("Item")
        assert len(table) == 2
        assert (1, "Databases", 50.0, True) in table

    def test_boolean_roundtrip(self, source):
        table = source.catalog.table("Item")
        row = next(r for r in table if r[0] == 2)
        assert row[3] is False  # 0/1 converted back to bool

    def test_insert_and_delete(self, source):
        source.commit(DataUpdate.insert(ITEM, [(3, "Datalog", 30.0, True)]))
        source.commit(
            DataUpdate.delete(ITEM, [(1, "Databases", 50.0, True)])
        )
        names = {row[1] for row in source.catalog.table("Item")}
        assert names == {"Compilers", "Datalog"}

    def test_delete_absent_rejected(self, source):
        with pytest.raises(UpdateApplicationError):
            source.commit(
                DataUpdate.delete(ITEM, [(9, "Ghost", 1.0, True)])
            )

    def test_bag_semantics_duplicates(self, source):
        source.commit(
            DataUpdate.insert(ITEM, [(1, "Databases", 50.0, True)])
        )
        assert source.catalog.table("Item").count(
            (1, "Databases", 50.0, True)
        ) == 2

    def test_total_rows(self, source):
        assert source.total_rows() == 2


class TestSchemaChanges:
    def test_rename_relation(self, source):
        source.commit(RenameRelation("Item", "Stock"))
        assert source.has_relation("Stock")
        assert not source.has_relation("Item")
        assert len(source.catalog.table("Stock")) == 2

    def test_rename_attribute(self, source):
        source.commit(RenameAttribute("Item", "Book", "Title"))
        assert "Title" in source.schema_of("Item")
        table = source.catalog.table("Item")
        assert any("Databases" in row for row in table)

    def test_drop_attribute(self, source):
        source.commit(DropAttribute("Item", "InStock"))
        assert source.schema_of("Item").arity == 3
        assert (1, "Databases", 50.0) in source.catalog.table("Item")

    def test_add_attribute_with_default(self, source):
        source.commit(
            AddAttribute("Item", Attribute("Year"), "2004")
        )
        assert (1, "Databases", 50.0, True, "2004") in source.catalog.table(
            "Item"
        )

    def test_drop_relation_snapshots(self, source):
        change = DropRelation("Item")
        source.commit(change)
        assert not source.has_relation("Item")
        assert change.dropped_extent is not None
        assert len(change.dropped_extent) == 2

    def test_create_relation_update(self, source):
        source.commit(
            CreateRelation(
                RelationSchema.of("New", ["a"]), rows=(("x",),)
            )
        )
        assert ("x",) in source.catalog.table("New")

    def test_restructure(self, source):
        flat = RelationSchema.of("Flat", ["Book"])
        change = RestructureRelations(
            dropped=("Item",), new_schema=flat, new_rows=(("Databases",),)
        )
        source.commit(change)
        assert source.has_relation("Flat")
        assert "Item" in change.dropped_extents


class TestQueries:
    def test_sql_execution(self, source):
        query = SPJQuery(
            relations=(RelationRef("retailer", "Item", "I"),),
            projection=(attr("I", "Book"), attr("I", "Price")),
            selection=InPredicate(attr("I", "SID"), frozenset({1})),
        )
        result = source.execute(query)
        assert result.rows() == [("Databases", 50.0)]

    def test_join_inside_source(self, source):
        source.create_relation(
            RelationSchema.of("Reviews", ["Book", "Stars"]),
            [("Databases", "5"), ("Compilers", "4")],
        )
        query = SPJQuery(
            relations=(
                RelationRef("retailer", "Item", "I"),
                RelationRef("retailer", "Reviews", "R"),
            ),
            projection=(attr("I", "Book"), attr("R", "Stars")),
            joins=(JoinCondition(attr("I", "Book"), attr("R", "Book")),),
        )
        result = source.execute(query)
        assert sorted(result.rows()) == [
            ("Compilers", "4"),
            ("Databases", "5"),
        ]

    def test_missing_relation_breaks(self, source):
        source.commit(RenameRelation("Item", "Stock"))
        query = SPJQuery(
            relations=(RelationRef("retailer", "Item", "I"),),
            projection=(attr("I", "Book"),),
        )
        with pytest.raises(BrokenQueryError):
            source.execute(query)

    def test_missing_attribute_breaks(self, source):
        source.commit(DropAttribute("Item", "Price"))
        query = SPJQuery(
            relations=(RelationRef("retailer", "Item", "I"),),
            projection=(attr("I", "Price"),),
        )
        with pytest.raises(BrokenQueryError):
            source.execute(query)

    def test_unreferenced_change_does_not_break(self, source):
        source.commit(DropAttribute("Item", "InStock"))
        query = SPJQuery(
            relations=(RelationRef("retailer", "Item", "I"),),
            projection=(attr("I", "Book"),),
        )
        assert len(source.execute(query)) == 2

    def test_wrong_source_breaks(self, source):
        query = SPJQuery(
            relations=(RelationRef("library", "Catalog", "C"),),
            projection=(attr("C", "Title"),),
        )
        with pytest.raises(BrokenQueryError):
            source.execute(query)


class TestEndToEndWithViewManager:
    """The whole Dyno stack on SQLite sources, unchanged."""

    def build(self):
        engine = SimEngine(CostModel.paper_default())
        retailer = SqliteDataSource("retailer")
        retailer.create_relation(
            ITEM,
            [(1, "Databases", 50.0, True), (2, "Compilers", 40.0, True)],
        )
        engine.add_source(retailer)
        library = SqliteDataSource("library")
        catalog = RelationSchema.of("Catalog", ["Title", "Publisher"])
        library.create_relation(
            catalog, [("Databases", "MIT"), ("Compilers", "AW")]
        )
        engine.add_source(library)
        query = SPJQuery(
            relations=(
                RelationRef("retailer", "Item", "I"),
                RelationRef("library", "Catalog", "C"),
            ),
            projection=(
                attr("I", "Book"),
                attr("I", "Price"),
                attr("C", "Publisher"),
            ),
            joins=(JoinCondition(attr("I", "Book"), attr("C", "Title")),),
        )
        manager = ViewManager(engine, ViewDefinition("V", query))
        return engine, manager, catalog

    def test_du_and_sc_maintenance_converges(self):
        from repro.sources.workload import FixedUpdate, Workload

        engine, manager, catalog = self.build()
        workload = Workload()
        workload.add(
            0.0,
            "retailer",
            FixedUpdate(
                DataUpdate.insert(ITEM, [(3, "Datalog", 30.0, True)])
            ),
        )
        workload.add(
            0.0,
            "library",
            FixedUpdate(
                DataUpdate.insert(catalog, [("Datalog", "PH")])
            ),
        )
        workload.add(
            1.0, "retailer", FixedUpdate(RenameRelation("Item", "Stock"))
        )
        engine.schedule_workload(workload)
        DynoScheduler(manager, PESSIMISTIC).run()
        report = check_convergence(manager)
        assert report.consistent, report.summary()
        assert manager.view.query.references_relation("retailer", "Stock")
        assert len(manager.mv.extent) == 3
