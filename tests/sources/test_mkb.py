"""Meta-knowledge base lookups."""

from repro.sources.mkb import (
    AttributeReplacement,
    MetaKnowledgeBase,
    RelationReplacement,
)


def make_mkb() -> MetaKnowledgeBase:
    mkb = MetaKnowledgeBase()
    mkb.add_relation_replacement(
        RelationReplacement(
            source="retailer",
            covers=("Store", "Item"),
            new_source="retailer",
            new_relation="StoreItems",
            attr_map={("Item", "Book"): "Book"},
        )
    )
    mkb.add_attribute_replacement(
        AttributeReplacement(
            source="library",
            relation="Catalog",
            attribute="Review",
            new_source="digest",
            new_relation="ReaderDigest",
            new_attribute="Comments",
            join_on=("Catalog", "Title"),
            join_attribute="Article",
        )
    )
    return mkb


class TestRelationReplacement:
    def test_lookup_by_any_covered_relation(self):
        mkb = make_mkb()
        rule_store = mkb.relation_replacement("retailer", "Store")
        rule_item = mkb.relation_replacement("retailer", "Item")
        assert rule_store is rule_item
        assert rule_store.new_relation == "StoreItems"

    def test_lookup_miss(self):
        mkb = make_mkb()
        assert mkb.relation_replacement("retailer", "Other") is None
        assert mkb.relation_replacement("library", "Store") is None

    def test_maps_attribute(self):
        rule = make_mkb().relation_replacement("retailer", "Item")
        assert rule.maps_attribute("Item", "Book") == "Book"
        assert rule.maps_attribute("Item", "Unknown") is None


class TestAttributeReplacement:
    def test_lookup(self):
        mkb = make_mkb()
        rule = mkb.attribute_replacement("library", "Catalog", "Review")
        assert rule is not None
        assert rule.new_attribute == "Comments"
        assert rule.join_on == ("Catalog", "Title")

    def test_lookup_miss(self):
        mkb = make_mkb()
        assert (
            mkb.attribute_replacement("library", "Catalog", "Title") is None
        )

    def test_len_counts_both_kinds(self):
        assert len(make_mkb()) == 2
