"""Update messages: conflict tests and envelopes."""

from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType
from repro.sources.messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    UpdateMessage,
)
from tests.conftest import bookinfo_query

QUERY = bookinfo_query()
ITEM = RelationSchema.of("Item", ["SID", "Book"])


def envelope(source: str, payload) -> UpdateMessage:
    return UpdateMessage(source, 1, 0.0, payload)


class TestDataUpdate:
    def test_insert_constructor(self):
        update = DataUpdate.insert(ITEM, [("1", "B")])
        assert update.relation == "Item"
        assert update.delta.count(("1", "B")) == 1

    def test_delete_constructor(self):
        update = DataUpdate.delete(ITEM, [("1", "B")])
        assert update.delta.count(("1", "B")) == -1

    def test_touched_relations(self):
        assert DataUpdate.insert(ITEM, []).touched_relations() == {"Item"}

    def test_describe_counts(self):
        update = DataUpdate(
            "Item",
            DataUpdate.insert(ITEM, [("1", "B"), ("2", "C")]).delta,
        )
        assert "+2/-0" in update.describe()

    def test_never_conflicts_with_query(self):
        message = envelope("retailer", DataUpdate.insert(ITEM, []))
        assert not message.conflicts_with_query(QUERY)
        assert message.is_data_update and not message.is_schema_change


class TestSchemaChangeConflicts:
    def test_rename_relation_in_view_conflicts(self):
        message = envelope("retailer", RenameRelation("Store", "Shops"))
        assert message.conflicts_with_query(QUERY)

    def test_rename_relation_not_in_view(self):
        message = envelope("retailer", RenameRelation("Other", "Other2"))
        assert not message.conflicts_with_query(QUERY)

    def test_rename_relation_wrong_source(self):
        message = envelope("library", RenameRelation("Store", "Shops"))
        assert not message.conflicts_with_query(QUERY)

    def test_drop_attribute_in_view_conflicts(self):
        message = envelope("library", DropAttribute("Catalog", "Review"))
        assert message.conflicts_with_query(QUERY)

    def test_drop_attribute_not_in_view(self):
        # Catalog.Year is not referenced by the view query.
        message = envelope("library", DropAttribute("Catalog", "Year"))
        assert not message.conflicts_with_query(QUERY)

    def test_rename_attribute_join_attr_conflicts(self):
        message = envelope(
            "retailer", RenameAttribute("Item", "SID", "StoreId")
        )
        assert message.conflicts_with_query(QUERY)

    def test_add_attribute_never_conflicts(self):
        message = envelope(
            "library", AddAttribute("Catalog", Attribute("Year"))
        )
        assert not message.conflicts_with_query(QUERY)

    def test_create_relation_never_conflicts(self):
        message = envelope(
            "library", CreateRelation(RelationSchema.of("New", ["a"]))
        )
        assert not message.conflicts_with_query(QUERY)

    def test_drop_relation_conflicts(self):
        message = envelope("retailer", DropRelation("Item"))
        assert message.conflicts_with_query(QUERY)

    def test_restructure_conflicts_if_any_dropped_in_view(self):
        change = RestructureRelations(
            dropped=("Store", "Item"),
            new_schema=RelationSchema.of("StoreItems", ["Store", "Book"]),
        )
        assert envelope("retailer", change).conflicts_with_query(QUERY)

    def test_restructure_unrelated(self):
        change = RestructureRelations(
            dropped=("Other",),
            new_schema=RelationSchema.of("Other2", ["a"]),
        )
        assert not envelope("retailer", change).conflicts_with_query(QUERY)


class TestTouchedRelations:
    def test_rename_touches_both_names(self):
        change = RenameRelation("Store", "Shops")
        assert change.touched_relations() == {"Store", "Shops"}

    def test_restructure_touches_all(self):
        change = RestructureRelations(
            dropped=("Store", "Item"),
            new_schema=RelationSchema.of("StoreItems", ["a"]),
        )
        assert change.touched_relations() == {"Store", "Item", "StoreItems"}

    def test_describe_mentions_kind(self):
        assert "rename" in RenameRelation("A", "B").describe()
        assert "drop" in DropAttribute("R", "a").describe()
        assert "restructure" in RestructureRelations(
            dropped=("A",), new_schema=RelationSchema.of("B", ["x"])
        ).describe()


class TestEnvelope:
    def test_describe_includes_source_and_seqno(self):
        message = envelope("retailer", DropRelation("Item"))
        assert "retailer#1" in message.describe()
        assert "repr" not in repr(message)  # repr delegates to describe

    def test_touched_relations_delegates(self):
        message = envelope("retailer", RenameRelation("A", "B"))
        assert message.touched_relations() == {"A", "B"}
