"""View-query decomposition into per-source maintenance queries."""

from repro.maintenance.decompose import (
    bfs_alias_order,
    connecting_joins,
    needed_columns,
    probe_query,
    pushdown_selection,
    scan_query,
    selection_within,
    subquery_over,
)
from repro.relational.predicate import (
    TRUE,
    AttrComparison,
    Comparison,
    InPredicate,
    attr,
    conjunction,
)
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from tests.conftest import bookinfo_query

QUERY = bookinfo_query()


class TestNeededColumns:
    def test_projection_first_then_join_attrs(self):
        columns = needed_columns(QUERY, "I")
        assert columns[0:3] == ("Book", "Author", "Price")
        assert "SID" in columns  # join attribute

    def test_join_only_attrs_included(self):
        assert "SID" in needed_columns(QUERY, "S")
        assert "Title" in needed_columns(QUERY, "C")

    def test_unreferenced_attrs_excluded(self):
        # Catalog.Year is not in the view at all
        assert "Year" not in needed_columns(QUERY, "C")


class TestSelectionSplitting:
    def selective(self) -> SPJQuery:
        return QUERY.with_extra_selection(
            conjunction(
                [
                    Comparison(attr("I", "Price"), "<", 100.0),
                    AttrComparison(attr("S", "Store"), "!=", attr("C", "Publisher")),
                ]
            )
        )

    def test_pushdown_single_alias(self):
        predicate = pushdown_selection(self.selective(), "I")
        assert predicate == Comparison(attr("I", "Price"), "<", 100.0)

    def test_pushdown_none(self):
        assert pushdown_selection(self.selective(), "C") is TRUE

    def test_selection_within(self):
        predicate = selection_within(self.selective(), {"S", "C"})
        assert predicate == AttrComparison(
            attr("S", "Store"), "!=", attr("C", "Publisher")
        )

    def test_selection_within_all(self):
        predicate = selection_within(self.selective(), {"S", "I", "C"})
        assert len(predicate.children) == 2  # type: ignore[attr-defined]


class TestQueryBuilders:
    def test_probe_query_shape(self):
        query = probe_query(QUERY, "C", {"Title": frozenset({"DB"})})
        assert query.relations == (RelationRef("library", "Catalog", "C"),)
        assert any(
            isinstance(p, InPredicate)
            for p in getattr(query.selection, "children", [query.selection])
        )
        assert attr("C", "Publisher") in query.projection
        assert query.joins == ()

    def test_probe_query_multiple_probes(self):
        query = probe_query(
            QUERY,
            "I",
            {"SID": frozenset({1}), "Book": frozenset({"DB"})},
        )
        in_predicates = [
            p
            for p in query.selection.children  # type: ignore[attr-defined]
            if isinstance(p, InPredicate)
        ]
        assert len(in_predicates) == 2

    def test_scan_query_shape(self):
        query = scan_query(QUERY, "S")
        assert query.joins == ()
        assert query.relations[0].relation == "Store"
        assert set(ref.name for ref in query.projection) == {"Store", "SID"}

    def test_subquery_over(self):
        sub = subquery_over(QUERY, ["S", "I"], (attr("I", "Book"),))
        assert set(sub.aliases) == {"S", "I"}
        assert len(sub.joins) == 1  # only S-I join survives
        assert sub.projection == (attr("I", "Book"),)


class TestJoinGraphTraversal:
    def test_bfs_from_middle(self):
        assert bfs_alias_order(QUERY, "I") == ["I", "C", "S"]

    def test_bfs_from_end(self):
        assert bfs_alias_order(QUERY, "S") == ["S", "I", "C"]

    def test_disconnected_alias_appended(self):
        query = SPJQuery(
            relations=QUERY.relations
            + (RelationRef("digest", "ReaderDigest", "R"),),
            projection=QUERY.projection,
            joins=QUERY.joins,  # R not joined to anything
        )
        order = bfs_alias_order(query, "S")
        assert order[-1] == "R"

    def test_connecting_joins(self):
        joins = connecting_joins(QUERY, "C", {"I", "S"})
        assert len(joins) == 1
        assert joins[0].touches("C")

    def test_connecting_joins_none(self):
        assert connecting_joins(QUERY, "C", {"S"}) == []
