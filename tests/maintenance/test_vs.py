"""View synchronization: the paper's rewritings (Queries 3, 4, 5)."""

import pytest

from repro.maintenance.vs import (
    ViewSynchronizationError,
    ViewSynchronizer,
)
from repro.relational.predicate import Comparison, attr
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import Attribute, RelationSchema
from repro.sources.messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    UpdateMessage,
)
from repro.views.definition import ViewDefinition
from tests.conftest import (
    ITEM_SCHEMA,
    STOREITEMS_SCHEMA,
    bookinfo_query,
    bookstore_mkb,
)


def view() -> ViewDefinition:
    return ViewDefinition("BookInfo", bookinfo_query())


def synchronizer() -> ViewSynchronizer:
    return ViewSynchronizer(bookstore_mkb())


def message(source: str, payload) -> UpdateMessage:
    return UpdateMessage(source, 1, 0.0, payload)


class TestRenames:
    def test_rename_relation(self):
        result = synchronizer().synchronize(
            view(), message("retailer", RenameRelation("Item", "Items2"))
        )
        assert result.report.changed
        assert result.definition.version == 2
        assert result.definition.query.references_relation(
            "retailer", "Items2"
        )

    def test_rename_relation_not_in_view_noop(self):
        result = synchronizer().synchronize(
            view(), message("retailer", RenameRelation("Other", "O2"))
        )
        assert not result.report.changed
        assert result.definition.version == 1

    def test_rename_attribute(self):
        result = synchronizer().synchronize(
            view(),
            message("library", RenameAttribute("Catalog", "Title", "Name")),
        )
        query = result.definition.query
        assert attr("C", "Name") in query.joins[1].references()

    def test_rename_attribute_not_referenced_noop(self):
        result = synchronizer().synchronize(
            view(),
            message("library", RenameAttribute("Catalog", "Year", "Yr")),
        )
        assert not result.report.changed


class TestAdditions:
    def test_add_attribute_noop(self):
        result = synchronizer().synchronize(
            view(),
            message("library", AddAttribute("Catalog", Attribute("Year"))),
        )
        assert not result.report.changed

    def test_create_relation_noop(self):
        result = synchronizer().synchronize(
            view(),
            message(
                "library",
                CreateRelation(RelationSchema.of("New", ["a"])),
            ),
        )
        assert not result.report.changed

    def test_non_schema_change_rejected(self):
        with pytest.raises(ViewSynchronizationError):
            synchronizer().synchronize(
                view(),
                message("library", DataUpdate.insert(ITEM_SCHEMA, [])),
            )


class TestDropAttribute:
    def test_replacement_produces_query_4(self):
        """Dropping Catalog.Review pulls in ReaderDigest (Query 4)."""
        result = synchronizer().synchronize(
            view(), message("library", DropAttribute("Catalog", "Review"))
        )
        query = result.definition.query
        assert query.references_relation("digest", "ReaderDigest")
        # Review is now sourced from the digest alias
        new_alias = [
            ref.alias for ref in query.relations if ref.relation == "ReaderDigest"
        ][0]
        assert attr(new_alias, "Comments") in query.projection
        # the join C.Title = R.Article was added
        assert any(
            {ref.name for ref in join.references()} == {"Title", "Article"}
            for join in query.joins
        )

    def test_prune_without_replacement(self):
        result = synchronizer().synchronize(
            view(), message("library", DropAttribute("Catalog", "Publisher"))
        )
        query = result.definition.query
        assert attr("C", "Publisher") not in query.projection
        assert "C.Publisher" in result.report.pruned_attributes

    def test_prune_unreferenced_noop(self):
        result = synchronizer().synchronize(
            view(), message("library", DropAttribute("Catalog", "Year"))
        )
        assert not result.report.changed

    def test_prune_removes_selection_terms(self):
        selective = ViewDefinition(
            "V",
            bookinfo_query().with_extra_selection(
                Comparison(attr("C", "Publisher"), "=", "MIT")
            ),
        )
        result = synchronizer().synchronize(
            selective,
            message("library", DropAttribute("Catalog", "Publisher")),
        )
        assert result.definition.query.selection.references() == frozenset()

    def test_dropped_join_attribute_removes_relation(self):
        # Catalog.Title is a join attribute with no declared stand-in:
        # the whole Catalog relation is evolved out of the view.
        result = synchronizer().synchronize(
            view(), message("library", DropAttribute("Catalog", "Title"))
        )
        query = result.definition.query
        assert not query.references_relation("library", "Catalog")
        assert "C" in result.report.removed_relations


class TestDropRelation:
    def test_multi_relation_replacement_produces_query_3(self):
        """Store+Item collapse into StoreItems (Query 3)."""
        result = synchronizer().synchronize(
            view(), message("retailer", DropRelation("Store"))
        )
        query = result.definition.query
        assert query.references_relation("retailer", "StoreItems")
        assert not query.references_relation("retailer", "Store")
        assert not query.references_relation("retailer", "Item")
        # internal join S.SID = I.SID is gone; external join survives
        assert len(query.joins) == 1
        join_names = {ref.name for ref in query.joins[0].references()}
        assert join_names == {"Book", "Title"}
        assert len(query.relations) == 2

    def test_drop_without_replacement_removes_relation(self):
        plain = ViewSynchronizer()  # empty MKB
        result = plain.synchronize(
            view(), message("library", DropRelation("Catalog"))
        )
        query = result.definition.query
        assert not query.references_relation("library", "Catalog")
        assert len(query.relations) == 2

    def test_drop_unreferenced_noop(self):
        result = synchronizer().synchronize(
            view(), message("retailer", DropRelation("Warehouse"))
        )
        assert not result.report.changed


class TestRestructure:
    def test_restructure_uses_mkb_rule(self):
        change = RestructureRelations(
            dropped=("Store", "Item"), new_schema=STOREITEMS_SCHEMA
        )
        result = synchronizer().synchronize(
            view(), message("retailer", change)
        )
        assert result.definition.query.references_relation(
            "retailer", "StoreItems"
        )

    def test_restructure_auto_rule_without_mkb(self):
        from repro.relational.table import Table

        plain = ViewSynchronizer()
        change = RestructureRelations(
            dropped=("Store", "Item"), new_schema=STOREITEMS_SCHEMA
        )
        # dropped extents drive the auto attribute mapping
        change.dropped_extents["Store"] = Table(
            RelationSchema.of("Store", ["SID", "Store"])
        )
        change.dropped_extents["Item"] = Table(ITEM_SCHEMA)
        result = plain.synchronize(view(), message("retailer", change))
        query = result.definition.query
        assert query.references_relation("retailer", "StoreItems")
        assert any("auto-derived" in note for note in result.report.notes)


class TestSchemaValidation:
    def test_unmappable_attributes_pruned_with_lookup(self):
        # StoreItems lacks "SID"; with a schema lookup the substitution
        # validates and prunes accordingly (SID only occurs in the
        # internal join, which is dropped anyway).
        def lookup(source, relation):
            if relation == "StoreItems":
                return STOREITEMS_SCHEMA
            return None

        sync = ViewSynchronizer(bookstore_mkb(), schema_lookup=lookup)
        result = sync.synchronize(
            view(), message("retailer", DropRelation("Item"))
        )
        query = result.definition.query
        assert query.references_relation("retailer", "StoreItems")
        for ref in query.all_attribute_refs():
            if ref.relation == "S":
                assert ref.name in STOREITEMS_SCHEMA


class TestErrorPaths:
    def test_attribute_replacement_without_anchor_falls_back_to_prune(self):
        """The MKB stand-in needs a join anchor; when the anchor relation
        is not in the view, synchronization degrades to pruning."""
        from repro.relational.predicate import attr as attr_
        from repro.relational.query import RelationRef, SPJQuery

        # A view over Catalog alone: Title (the anchor) is present but
        # we remove the anchor RELATION by declaring the rule against a
        # different one.
        from repro.sources.mkb import AttributeReplacement, MetaKnowledgeBase

        mkb = MetaKnowledgeBase()
        mkb.add_attribute_replacement(
            AttributeReplacement(
                source="library",
                relation="Catalog",
                attribute="Review",
                new_source="digest",
                new_relation="ReaderDigest",
                new_attribute="Comments",
                join_on=("NotInView", "Title"),
                join_attribute="Article",
            )
        )
        query = SPJQuery(
            relations=(RelationRef("library", "Catalog", "C"),),
            projection=(attr_("C", "Title"), attr_("C", "Review")),
        )
        sync = ViewSynchronizer(mkb)
        result = sync.synchronize(
            ViewDefinition("V", query),
            message("library", DropAttribute("Catalog", "Review")),
        )
        assert attr_("C", "Review") not in result.definition.query.projection
        assert any("needs relation" in note for note in result.report.notes)

    def test_dropping_only_projected_attribute_raises(self):
        from repro.relational.predicate import attr as attr_
        from repro.relational.query import RelationRef, SPJQuery

        query = SPJQuery(
            relations=(RelationRef("library", "Catalog", "C"),),
            projection=(attr_("C", "Review"),),
        )
        sync = ViewSynchronizer()
        with pytest.raises(ViewSynchronizationError):
            sync.synchronize(
                ViewDefinition("V", query),
                message("library", DropAttribute("Catalog", "Review")),
            )

    def test_dropping_only_relation_raises(self):
        from repro.relational.predicate import attr as attr_
        from repro.relational.query import RelationRef, SPJQuery

        query = SPJQuery(
            relations=(RelationRef("library", "Catalog", "C"),),
            projection=(attr_("C", "Title"),),
        )
        sync = ViewSynchronizer()  # no replacement rule
        with pytest.raises(ViewSynchronizationError):
            sync.synchronize(
                ViewDefinition("V", query),
                message("library", DropRelation("Catalog")),
            )
