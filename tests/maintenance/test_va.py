"""View adaptation: Equation 6 and the effectful recompute."""

import pytest

from repro.maintenance.va import adapt_view, telescoping_delta
from repro.relational.executor import execute
from repro.relational.predicate import attr
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.sim.costs import CostModel
from repro.sources.messages import DataUpdate, DropAttribute
from repro.views.umq import MaintenanceUnit
from tests.conftest import build_bookstore

R = RelationSchema.of("R", ["k", "a"])
T = RelationSchema.of("T", ["k", "x"])


def two_way() -> SPJQuery:
    return SPJQuery(
        relations=(
            RelationRef("s1", "R", "R"),
            RelationRef("s2", "T", "T"),
        ),
        projection=(attr("R", "a"), attr("T", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
    )


class TestTelescopingDelta:
    """Equation 6 equals the recompute diff — exhaustively by cases."""

    def check(self, old_tables, new_tables, query=None):
        query = query or two_way()
        delta = telescoping_delta(query, old_tables, new_tables)
        old_extent = execute(query, old_tables)
        new_extent = execute(query, new_tables)
        expected = new_extent.as_delta()
        expected.merge(old_extent.as_delta().negated())
        if delta is None:
            assert expected.is_empty()
        else:
            assert delta == expected

    def test_no_change_returns_none(self):
        tables = {"R": Table(R, [("1", "a")]), "T": Table(T, [("1", "x")])}
        assert telescoping_delta(two_way(), tables, tables) is None

    def test_single_relation_insert(self):
        old = {"R": Table(R, [("1", "a")]), "T": Table(T, [("1", "x")])}
        new = {
            "R": Table(R, [("1", "a"), ("2", "b")]),
            "T": old["T"],
        }
        self.check(old, new)

    def test_single_relation_delete(self):
        old = {
            "R": Table(R, [("1", "a"), ("2", "b")]),
            "T": Table(T, [("1", "x"), ("2", "y")]),
        }
        new = {"R": Table(R, [("1", "a")]), "T": old["T"]}
        self.check(old, new)

    def test_both_relations_change(self):
        old = {"R": Table(R, [("1", "a")]), "T": Table(T, [("1", "x")])}
        new = {
            "R": Table(R, [("2", "b")]),
            "T": Table(T, [("2", "y"), ("1", "x")]),
        }
        self.check(old, new)

    def test_change_with_duplicates(self):
        old = {
            "R": Table(R, [("1", "a"), ("1", "a")]),
            "T": Table(T, [("1", "x")]),
        }
        new = {
            "R": Table(R, [("1", "a")]),
            "T": Table(T, [("1", "x"), ("1", "x")]),
        }
        self.check(old, new)

    def test_disjoint_replacement(self):
        old = {"R": Table(R, [("1", "a")]), "T": Table(T, [("1", "x")])}
        new = {"R": Table(R, [("9", "z")]), "T": Table(T, [("9", "w")])}
        self.check(old, new)


class TestAdaptView:
    def test_rebuilds_extent_for_rewritten_definition(self):
        engine, manager = build_bookstore(CostModel.free())
        # Drop Catalog.Review at the source, rewrite the view, adapt.
        change = DropAttribute("Catalog", "Review")
        message = engine.source("library").commit(change, at=0.0)
        unit = manager.umq.head()
        result = manager.synchronizer.synchronize(manager.view, message)
        extent = engine.run_process(
            adapt_view(
                result.definition, unit, manager.umq, engine.cost_model
            )
        )
        # Adapted extent must match the NEW definition's recompute:
        manager.view = result.definition
        assert extent == manager.recompute_reference()

    def test_rounds_multiply_scan_cost(self):
        engine, manager = build_bookstore(
            CostModel(
                query_base=1.0,
                query_per_scanned_tuple=0.0,
                query_per_result_tuple=0.0,
                va_base=0.0,
                va_per_tuple=0.0,
            )
        )
        change = DropAttribute("Catalog", "Review")
        message = engine.source("library").commit(change, at=0.0)
        unit = manager.umq.head()
        result = manager.synchronizer.synchronize(manager.view, message)
        engine.run_process(
            adapt_view(
                result.definition,
                unit,
                manager.umq,
                engine.cost_model,
                rounds=3,
            )
        )
        # 3 rounds x 4 relations (Store, Item, Catalog, ReaderDigest)
        assert engine.clock.now == pytest.approx(12.0)

    def test_adaptation_folds_in_batch_data_updates(self):
        engine, manager = build_bookstore(CostModel.free())
        from tests.conftest import ITEM_SCHEMA

        source = engine.source("retailer")
        du_message = source.commit(
            DataUpdate.insert(ITEM_SCHEMA, [(1, "Databases", "G2", 1.0)]),
            at=0.0,
        )
        sc_message = engine.source("library").commit(
            DropAttribute("Catalog", "Review"), at=0.0
        )
        # Merge both into one batch unit (as correction would).
        batch = MaintenanceUnit(
            [manager.umq.messages()[0], manager.umq.messages()[1]]
        )
        manager.umq.replace_order([batch])
        result = manager.synchronizer.synchronize(manager.view, sc_message)
        extent = engine.run_process(
            adapt_view(result.definition, batch, manager.umq, engine.cost_model)
        )
        manager.view = result.definition
        assert extent == manager.recompute_reference()
        # the batched DU's new join row is present
        assert any("G2" in str(row) for row in extent.rows())
