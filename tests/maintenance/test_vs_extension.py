"""The extend-on-add view-extension policy."""

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import PESSIMISTIC
from repro.maintenance.vs import ViewSynchronizer
from repro.relational.predicate import attr
from repro.relational.schema import Attribute
from repro.sim.costs import CostModel
from repro.sources.messages import AddAttribute, UpdateMessage
from repro.sources.workload import FixedUpdate, Workload
from repro.views.definition import ViewDefinition
from tests.conftest import bookinfo_query, build_bookstore


def message(source, payload) -> UpdateMessage:
    return UpdateMessage(source, 1, 0.0, payload)


class TestPolicyOff:
    def test_default_ignores_additions(self):
        synchronizer = ViewSynchronizer()
        view = ViewDefinition("V", bookinfo_query())
        result = synchronizer.synchronize(
            view,
            message("library", AddAttribute("Catalog", Attribute("Year"))),
        )
        assert not result.report.changed


class TestPolicyOn:
    def test_projection_extended(self):
        synchronizer = ViewSynchronizer(extend_on_add=True)
        view = ViewDefinition("V", bookinfo_query())
        result = synchronizer.synchronize(
            view,
            message("library", AddAttribute("Catalog", Attribute("Year"))),
        )
        assert result.report.changed
        assert attr("C", "Year") in result.definition.query.projection

    def test_unrelated_relation_untouched(self):
        synchronizer = ViewSynchronizer(extend_on_add=True)
        view = ViewDefinition("V", bookinfo_query())
        result = synchronizer.synchronize(
            view,
            message("library", AddAttribute("Other", Attribute("Year"))),
        )
        assert not result.report.changed

    def test_duplicate_add_is_idempotent(self):
        synchronizer = ViewSynchronizer(extend_on_add=True)
        view = ViewDefinition("V", bookinfo_query())
        once = synchronizer.synchronize(
            view,
            message("library", AddAttribute("Catalog", Attribute("Year"))),
        ).definition
        twice = synchronizer.synchronize(
            once,
            message("library", AddAttribute("Catalog", Attribute("Year"))),
        )
        count = sum(
            1
            for ref in twice.definition.query.projection
            if ref == attr("C", "Year")
        )
        assert count == 1


class TestEndToEnd:
    def test_extension_flows_through_adaptation(self):
        engine, manager = build_bookstore(CostModel.free())
        manager.synchronizer.extend_on_add = True
        workload = Workload()
        workload.add(
            0.0,
            "library",
            FixedUpdate(
                AddAttribute("Catalog", Attribute("Year"), "2004")
            ),
        )
        engine.schedule_workload(workload)
        DynoScheduler(manager, PESSIMISTIC).run()
        assert manager.view.version == 2
        assert manager.mv.extent.schema.arity == 8  # 7 + Year
        assert all("2004" in row for row in manager.mv.extent.rows())
        assert manager.mv.extent == manager.recompute_reference()
