"""Local compensation: removing leaked concurrent effects from answers."""

import pytest

from repro.maintenance.compensation import (
    CompensationLog,
    compensate_answer,
    effect_on_answer,
    pending_data_updates,
)
from repro.relational.delta import Delta
from repro.relational.predicate import Comparison, InPredicate, attr, conjunction
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    UpdateMessage,
)

R = RelationSchema.of("R", ["k", "v"])


def probe(values=("1", "2")) -> SPJQuery:
    return SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "k"), attr("R", "v")),
        selection=InPredicate(attr("R", "k"), frozenset(values)),
    )


class TestEffectOnAnswer:
    def test_insert_effect(self):
        delta = Delta.insertion(R, [("1", "a")])
        effect = effect_on_answer(probe(), "R", delta)
        assert effect.count(("1", "a")) == 1

    def test_delete_effect_is_negative(self):
        delta = Delta.deletion(R, [("1", "a")])
        effect = effect_on_answer(probe(), "R", delta)
        assert effect.count(("1", "a")) == -1

    def test_filtered_by_probe(self):
        delta = Delta.insertion(R, [("9", "out-of-probe")])
        effect = effect_on_answer(probe(), "R", delta)
        assert effect.is_empty()

    def test_mixed_signs(self):
        delta = Delta(R)
        delta.add(("1", "a"), 1)
        delta.add(("2", "b"), -1)
        effect = effect_on_answer(probe(), "R", delta)
        assert effect.count(("1", "a")) == 1
        assert effect.count(("2", "b")) == -1

    def test_empty_delta_empty_effect(self):
        effect = effect_on_answer(probe(), "R", Delta(R))
        assert effect.is_empty()

    def test_effect_respects_selection(self):
        query = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "k"),),
            selection=conjunction(
                [
                    InPredicate(attr("R", "k"), frozenset({"1"})),
                    Comparison(attr("R", "v"), "=", "keep"),
                ]
            ),
        )
        delta = Delta.insertion(R, [("1", "keep"), ("1", "drop")])
        effect = effect_on_answer(query, "R", delta)
        assert effect.count(("1",)) == 1


def message(
    seqno: int, committed_at: float, payload
) -> UpdateMessage:
    return UpdateMessage("s", seqno, committed_at, payload)


class TestPendingSelection:
    def test_filters_by_relation_source_and_time(self):
        du_r = message(1, 1.0, DataUpdate.insert(R, [("1", "a")]))
        du_late = message(2, 5.0, DataUpdate.insert(R, [("2", "b")]))
        du_other = UpdateMessage(
            "other", 3, 1.0, DataUpdate.insert(R, [("1", "a")])
        )
        sc = message(4, 1.0, DropAttribute("R", "v"))
        leaked = pending_data_updates(
            [du_r, du_late, du_other, sc], "s", "R", answered_at=2.0
        )
        assert leaked == [du_r]

    def test_boundary_inclusive(self):
        du = message(1, 2.0, DataUpdate.insert(R, [("1", "a")]))
        assert pending_data_updates([du], "s", "R", 2.0) == [du]


class TestCompensateAnswer:
    def test_removes_leaked_insert(self):
        answer = Table(R, [("1", "a"), ("1", "leaked")])
        leaked = [message(1, 0.5, DataUpdate.insert(R, [("1", "leaked")]))]
        corrected = compensate_answer(answer, probe(), "R", leaked)
        assert ("1", "leaked") not in corrected
        assert ("1", "a") in corrected

    def test_restores_leaked_delete(self):
        answer = Table(R, [("1", "a")])  # ("2","gone") already deleted
        leaked = [message(1, 0.5, DataUpdate.delete(R, [("2", "gone")]))]
        corrected = compensate_answer(answer, probe(), "R", leaked)
        assert ("2", "gone") in corrected

    def test_extra_deltas_compensated(self):
        answer = Table(R, [("1", "self")])
        own = Delta.insertion(R, [("1", "self")])
        corrected = compensate_answer(
            answer, probe(), "R", [], extra_deltas=[own]
        )
        assert len(corrected) == 0

    def test_over_compensation_clamped_and_logged(self):
        # Subtracting an insert that is NOT in the answer would go
        # negative; baseline strategies can cause this.
        answer = Table(R)
        leaked = [message(1, 0.5, DataUpdate.insert(R, [("1", "ghost")]))]
        log = CompensationLog()
        corrected = compensate_answer(answer, probe(), "R", leaked, log)
        assert len(corrected) == 0
        assert any("over-compensation" in note for note in log.notes)

    def test_strict_log_raises_on_over_compensation(self):
        """Dyno-corrected runs arm strict mode: an over-compensation
        there means maintenance itself is wrong, so it must surface as
        an error instead of being clamped into silence."""
        import pytest

        from repro.maintenance.compensation import OverCompensationError

        answer = Table(R)
        leaked = [message(1, 0.5, DataUpdate.insert(R, [("1", "ghost")]))]
        log = CompensationLog(strict=True)
        with pytest.raises(OverCompensationError):
            compensate_answer(answer, probe(), "R", leaked, log)

    def test_baseline_strategies_still_clamp(self):
        """NAIVE/BLIND_MERGE schedulers leave the log non-strict: the
        broken-order anomalies they tolerate legitimately produce
        negative counts, which must clamp (and be noted), not raise."""
        from repro.core.scheduler import DynoScheduler
        from repro.core.strategies import (
            BLIND_MERGE,
            NAIVE,
            OPTIMISTIC,
            PESSIMISTIC,
        )
        from repro.experiments.testbed import build_testbed

        for strategy, strict in (
            (NAIVE, False),
            (BLIND_MERGE, False),
            (PESSIMISTIC, True),
            (OPTIMISTIC, True),
        ):
            testbed = build_testbed(strategy, tuples_per_relation=10)
            log = testbed.manager.compensation_log
            assert log.strict is strict, strategy.name
        # And a non-strict log clamps exactly as before.
        answer = Table(R)
        leaked = [message(1, 0.5, DataUpdate.insert(R, [("1", "ghost")]))]
        log = CompensationLog()
        corrected = compensate_answer(answer, probe(), "R", leaked, log)
        assert len(corrected) == 0
        assert any("over-compensation" in note for note in log.notes)

    def test_incompatible_delta_skipped_and_logged(self):
        answer = Table(R, [("1", "a")])
        narrow = RelationSchema.of("R", ["k"])  # missing attribute v
        leaked = [message(1, 0.5, DataUpdate.insert(narrow, [("1",)]))]
        log = CompensationLog()
        corrected = compensate_answer(answer, probe(), "R", leaked, log)
        assert ("1", "a") in corrected
        assert log.skipped_incompatible == 1

    def test_log_counts(self):
        answer = Table(R, [("1", "x")])
        leaked = [message(1, 0.5, DataUpdate.insert(R, [("1", "x")]))]
        log = CompensationLog()
        compensate_answer(answer, probe(), "R", leaked, log)
        assert log.compensated_queries == 1
        assert log.compensated_tuples == 1

    def test_input_answer_unmodified(self):
        answer = Table(R, [("1", "x")])
        leaked = [message(1, 0.5, DataUpdate.insert(R, [("1", "x")]))]
        compensate_answer(answer, probe(), "R", leaked)
        assert ("1", "x") in answer
