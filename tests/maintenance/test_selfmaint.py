"""SelfMaintenanceStore: coverage, local sync, SC invalidation, reseed."""

import pytest

from repro.maintenance.selfmaint import AuxHit, SelfMaintenanceStore
from repro.relational.executor import execute
from repro.relational.predicate import InPredicate, attr
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType
from repro.sim.metrics import Metrics
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    RenameRelation,
)
from repro.sources.source import DataSource

R = RelationSchema.of(
    "R",
    [("k", AttributeType.INT), "a", ("b", AttributeType.INT)],
)
S = RelationSchema.of("S", [("k", AttributeType.INT), "x"])


def make_source() -> DataSource:
    source = DataSource("s")
    source.create_relation(R, [(1, "p", 10), (2, "q", 20), (3, "r", 30)])
    source.create_relation(S, [(1, "z")])
    return source


def view_query() -> SPJQuery:
    """A two-way join referencing R.k, R.a and S.k, S.x."""
    return SPJQuery(
        relations=(
            RelationRef("s", "R", "R"),
            RelationRef("s", "S", "S"),
        ),
        projection=(attr("R", "k"), attr("R", "a"), attr("S", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("S", "k")),),
    )


def probe(keys: frozenset) -> SPJQuery:
    return SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "k"), attr("R", "a")),
        selection=InPredicate(attr("R", "k"), keys),
    )


def armed_store(source) -> SelfMaintenanceStore:
    store = SelfMaintenanceStore(metrics=Metrics())
    store.register_view(view_query())
    store.seed_from_source(source)
    return store


def wire_answer(source, query):
    ref = query.relations[0]
    return execute(query, {ref.alias: source.catalog.table(ref.relation)})


class TestCoverage:
    def test_covered_probe_is_served(self):
        source = make_source()
        store = armed_store(source)
        hit = store.serve(source, probe(frozenset({1, 2})))
        assert isinstance(hit, AuxHit)
        assert dict(hit.table.items()) == dict(
            wire_answer(source, probe(frozenset({1, 2}))).items()
        )

    def test_uncovered_column_misses(self):
        """The view never references R.b, so a probe touching it must
        go remote — the replica does not store that column."""
        source = make_source()
        store = armed_store(source)
        wide = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "k"), attr("R", "b")),
            selection=InPredicate(attr("R", "k"), frozenset({1})),
        )
        assert store.serve(source, wide) is None
        assert store.metrics.aux_misses == 1

    def test_join_queries_are_not_served(self):
        source = make_source()
        store = armed_store(source)
        assert store.serve(source, view_query()) is None

    def test_unregistered_relation_misses(self):
        source = make_source()
        store = SelfMaintenanceStore(metrics=Metrics())
        assert store.serve(source, probe(frozenset({1}))) is None


class TestLocalSync:
    def test_gap_deltas_are_folded_in(self):
        source = make_source()
        store = armed_store(source)
        source.commit(DataUpdate.insert(R, [(1, "new", 99)]))
        source.commit(DataUpdate.delete(R, [(2, "q", 20)]))
        hit = store.serve(source, probe(frozenset({1, 2})))
        assert dict(hit.table.items()) == dict(
            wire_answer(source, probe(frozenset({1, 2}))).items()
        )
        assert hit.applied_rows == 2
        assert store.metrics.aux_applied_rows == 2

    def test_resync_is_incremental(self):
        source = make_source()
        store = armed_store(source)
        source.commit(DataUpdate.insert(R, [(1, "new", 99)]))
        first = store.serve(source, probe(frozenset({1})))
        assert first.applied_rows == 1
        again = store.serve(source, probe(frozenset({1})))
        assert again.applied_rows == 0  # gap already consumed

    def test_unrelated_relation_updates_are_skipped(self):
        source = make_source()
        store = armed_store(source)
        source.commit(DataUpdate.insert(S, [(2, "w")]))
        hit = store.serve(source, probe(frozenset({1})))
        assert hit is not None
        assert hit.applied_rows == 0


class TestInvalidation:
    def test_sc_in_gap_drops_replica(self):
        source = make_source()
        store = armed_store(source)
        source.commit(DropAttribute("R", "b"))
        assert store.serve(source, probe(frozenset({1}))) is None
        assert store.metrics.aux_invalidations_sc == 1
        # Dropped for good until re-seeded, not resurrected silently.
        assert store.serve(source, probe(frozenset({1}))) is None

    def test_rename_in_gap_drops_replica(self):
        source = make_source()
        store = armed_store(source)
        source.commit(RenameRelation("S", "S2"))
        # R's replica shares the source log, so the SC in its gap
        # invalidates it too (the conservative Theorem 1 rule).
        assert store.serve(source, probe(frozenset({1}))) is None

    def test_widening_registration_drops_narrow_replica(self):
        source = make_source()
        store = armed_store(source)
        wider = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "k"), attr("R", "b")),
        )
        store.register_view(wider)
        assert store.serve(source, probe(frozenset({1}))) is None
        # Re-seeding rebuilds at the wider requirement.
        store.seed_from_source(source)
        assert store.serve(source, probe(frozenset({1}))) is not None


class TestObservation:
    def test_full_scan_reseeds(self):
        source = make_source()
        store = armed_store(source)
        source.commit(DropAttribute("R", "b"))
        assert store.serve(source, probe(frozenset({1}))) is None
        scan = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "k"), attr("R", "a")),
        )
        assert store.observe(source, scan, wire_answer(source, scan))
        hit = store.serve(source, probe(frozenset({1})))
        assert hit is not None
        assert dict(hit.table.items()) == dict(
            wire_answer(source, probe(frozenset({1}))).items()
        )

    def test_filtered_scan_is_not_observed(self):
        source = make_source()
        store = armed_store(source)
        filtered = probe(frozenset({1}))
        assert not store.observe(
            source, filtered, wire_answer(source, filtered)
        )

    def test_partial_projection_is_not_observed(self):
        """An answer missing a required column must not seed."""
        source = make_source()
        store = armed_store(source)
        narrow = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "k"),),
        )
        assert not store.observe(
            source, narrow, wire_answer(source, narrow)
        )


class TestCheckpointPlumbing:
    def test_clear_keeps_registrations(self):
        source = make_source()
        store = armed_store(source)
        store.clear()
        assert len(store) == 0
        assert store.seed_from_source(source) == 2  # R and S rebuilt

    def test_export_restore_round_trip(self):
        source = make_source()
        store = armed_store(source)
        entries = store.export_entries()
        fresh = SelfMaintenanceStore(metrics=Metrics())
        fresh.register_view(view_query())
        assert fresh.restore_entries(entries) == len(entries)
        hit = fresh.serve(source, probe(frozenset({1, 2})))
        assert dict(hit.table.items()) == dict(
            wire_answer(source, probe(frozenset({1, 2}))).items()
        )

    def test_restore_skips_entries_narrower_than_requirement(self):
        source = make_source()
        store = armed_store(source)
        entries = store.export_entries()
        fresh = SelfMaintenanceStore()
        fresh.register_view(view_query())
        fresh.register_view(
            SPJQuery(
                relations=(RelationRef("s", "R", "R"),),
                projection=(attr("R", "k"), attr("R", "b")),
            )
        )
        restored = fresh.restore_entries(entries)
        # R's entry lacks ``b`` now, S's still covers.
        assert restored == 1
