"""The VM probe sweep: correct view deltas under concurrency."""

import pytest

from repro.maintenance.vm import maintain_data_update
from repro.relational.delta import Delta
from repro.sim.costs import CostModel
from repro.sim.engine import SimEngine
from repro.sources.errors import BrokenQueryError
from repro.sources.messages import DataUpdate, DropAttribute
from repro.views.umq import MaintenanceUnit
from tests.conftest import (
    CATALOG_SCHEMA,
    ITEM_SCHEMA,
    build_bookstore,
)


def run_du(engine, manager, payload, source_name, extra_events=()):
    """Commit a DU, enqueue it, and run its maintenance process."""
    for at, action in extra_events:
        engine.schedule(at, action)
    message = engine.source(source_name).commit(payload, at=engine.clock.now)
    unit = manager.umq.head()
    process = maintain_data_update(manager.view, unit, manager.umq)
    return engine.run_process(process)


class TestBasicSweep:
    def test_insert_produces_view_tuple(self):
        engine, manager = build_bookstore(CostModel.free())
        payload = DataUpdate.insert(
            CATALOG_SCHEMA,
            [("Data Integration Guide", "Adams", "Eng", "P", "new")],
        )
        # matching Item row exists? No -> empty delta
        delta = run_du(engine, manager, payload, "library")
        assert delta is None or delta.is_empty()

    def test_insert_matching_join(self):
        engine, manager = build_bookstore(CostModel.free())
        payload = DataUpdate.insert(
            ITEM_SCHEMA, [(1, "Databases", "Gray2", 12.0)]
        )
        delta = run_du(engine, manager, payload, "retailer")
        assert delta is not None
        rows = {row for row, count in delta.items() if count > 0}
        assert ("Amazon", "Databases", "Gray2", 12.0, "MIT", "CS", "good") in rows

    def test_delete_produces_negative_delta(self):
        engine, manager = build_bookstore(CostModel.free())
        payload = DataUpdate.delete(
            ITEM_SCHEMA, [(1, "Databases", "Gray", 50.0)]
        )
        delta = run_du(engine, manager, payload, "retailer")
        assert delta is not None
        negatives = [count for _row, count in delta.items() if count < 0]
        assert negatives == [-1]

    def test_update_irrelevant_to_view(self):
        engine, manager = build_bookstore(CostModel.free())
        # ReaderDigest is not part of the initial view definition.
        reader = engine.source("digest").schema_of("ReaderDigest")
        payload = DataUpdate.insert(reader, [("X", "Y")])
        delta = run_du(engine, manager, payload, "digest")
        assert delta is None

    def test_empty_delta_short_circuits(self):
        engine, manager = build_bookstore(CostModel.free())
        payload = DataUpdate("Item", Delta(ITEM_SCHEMA))
        delta = run_du(engine, manager, payload, "retailer")
        assert delta is None


class TestConcurrencyCompensation:
    def test_duplication_anomaly_compensated(self):
        """Example 1.a: a concurrent insert leaks into the probe answer
        and must be compensated so the view is not refreshed twice."""
        engine, manager = build_bookstore(
            CostModel(query_base=1.0)
        )
        # The catalog insert's probe to Item will be answered at t>=1,
        # after the concurrent Item insert at t=0.5 committed.
        catalog_du = DataUpdate.insert(
            CATALOG_SCHEMA,
            [("Data Integration Guide", "Adams", "Eng", "P", "new")],
        )
        item_du = DataUpdate.insert(
            ITEM_SCHEMA, [(1, "Data Integration Guide", "Adams", 35.99)]
        )
        extra = [
            (
                0.5,
                lambda: engine.source("retailer").commit(item_du, at=0.5),
            )
        ]
        delta = run_du(engine, manager, catalog_du, "library", extra)
        # The leaked join result must have been compensated away: the
        # item insert is queued behind and will produce the tuple itself.
        assert delta is None or delta.is_empty()

    def test_broken_query_propagates(self):
        engine, manager = build_bookstore(CostModel(query_base=1.0))
        catalog_du = DataUpdate.insert(
            CATALOG_SCHEMA,
            [("Data Integration Guide", "Adams", "Eng", "P", "new")],
        )
        engine.schedule(
            0.5,
            lambda: engine.source("retailer").commit(
                DropAttribute("Item", "Price"), at=0.5
            ),
        )
        message = engine.source("library").commit(catalog_du, at=0.0)
        unit = manager.umq.head()
        process = maintain_data_update(manager.view, unit, manager.umq)
        with pytest.raises(BrokenQueryError):
            engine.run_process(process)
