"""Section 5 batch preprocessing: combining SCs, homogenizing DUs."""

from repro.maintenance.batch import (
    combine_schema_changes,
    data_updates_of,
    homogenize_data_updates,
    schema_changes_of,
)
from repro.relational.delta import Delta
from repro.relational.schema import Attribute, RelationSchema
from repro.sources.messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    UpdateMessage,
)
from repro.views.umq import MaintenanceUnit

R = RelationSchema.of("R", ["a", "b", "c"])


class TestCombineRenames:
    def test_rename_chain_collapses(self):
        """'rename A to B' then 'rename B to C' -> 'rename A to C'."""
        combined = combine_schema_changes(
            [
                ("s", RenameRelation("R", "R2")),
                ("s", RenameRelation("R2", "R3")),
            ]
        )
        assert combined == [("s", RenameRelation("R", "R3"))]

    def test_attribute_rename_chain_collapses(self):
        combined = combine_schema_changes(
            [
                ("s", RenameAttribute("R", "a", "a2")),
                ("s", RenameAttribute("R", "a2", "a3")),
            ]
        )
        assert combined == [("s", RenameAttribute("R", "a", "a3"))]

    def test_rename_back_to_original_vanishes(self):
        combined = combine_schema_changes(
            [
                ("s", RenameRelation("R", "R2")),
                ("s", RenameRelation("R2", "R")),
            ]
        )
        assert combined == []

    def test_rename_then_drop_attr_uses_original_names(self):
        combined = combine_schema_changes(
            [
                ("s", RenameRelation("R", "R2")),
                ("s", DropAttribute("R2", "b")),
            ]
        )
        assert ("s", DropAttribute("R", "b")) in combined
        assert ("s", RenameRelation("R", "R2")) in combined
        # attribute change emitted before the relation rename
        assert combined.index(
            ("s", DropAttribute("R", "b"))
        ) < combined.index(("s", RenameRelation("R", "R2")))

    def test_attr_rename_then_drop_collapses(self):
        combined = combine_schema_changes(
            [
                ("s", RenameAttribute("R", "a", "a2")),
                ("s", DropAttribute("R", "a2")),
            ]
        )
        assert combined == [("s", DropAttribute("R", "a"))]

    def test_rename_then_drop_relation_collapses(self):
        combined = combine_schema_changes(
            [
                ("s", RenameRelation("R", "R2")),
                ("s", DropRelation("R2")),
            ]
        )
        assert combined == [("s", DropRelation("R"))]

    def test_adds_preserved(self):
        added = AddAttribute("R", Attribute("z"), "dflt")
        combined = combine_schema_changes([("s", added)])
        assert combined == [("s", AddAttribute("R", Attribute("z"), "dflt"))]

    def test_same_name_different_sources_independent(self):
        combined = combine_schema_changes(
            [
                ("s1", RenameRelation("R", "R2")),
                ("s2", RenameRelation("R", "R9")),
            ]
        )
        assert ("s1", RenameRelation("R", "R2")) in combined
        assert ("s2", RenameRelation("R", "R9")) in combined

    def test_restructure_falls_back_to_sequence(self):
        sequence = [
            ("s", RenameRelation("R", "R2")),
            (
                "s",
                RestructureRelations(
                    dropped=("R2",),
                    new_schema=RelationSchema.of("Flat", ["a"]),
                ),
            ),
        ]
        assert combine_schema_changes(sequence) == sequence

    def test_create_falls_back_to_sequence(self):
        sequence = [
            ("s", CreateRelation(RelationSchema.of("New", ["a"]))),
            ("s", RenameRelation("New", "New2")),
        ]
        assert combine_schema_changes(sequence) == sequence


class TestUnitPartitioning:
    def unit(self) -> MaintenanceUnit:
        du = UpdateMessage(
            "s", 1, 0.0, DataUpdate.insert(R, [("1", "2", "3")])
        )
        sc = UpdateMessage("s", 2, 1.0, DropAttribute("R", "b"))
        return MaintenanceUnit([du, sc])

    def test_schema_changes_of(self):
        changes = schema_changes_of(self.unit())
        assert changes == [("s", DropAttribute("R", "b"))]

    def test_data_updates_of(self):
        updates = data_updates_of(self.unit())
        assert len(updates) == 1
        assert updates[0].is_data_update


class TestHomogenize:
    def test_projection_across_schema_versions(self):
        """insert (3,4); drop first attribute; insert (5) -> (4),(5)."""
        wide = RelationSchema.of("R", ["x", "y"])
        narrow = RelationSchema.of("R", ["y"])
        du_old = UpdateMessage(
            "s", 1, 0.0, DataUpdate.insert(wide, [("3", "4")])
        )
        du_new = UpdateMessage(
            "s", 3, 2.0, DataUpdate.insert(narrow, [("5",)])
        )
        merged = homogenize_data_updates(
            [du_old, du_new],
            final_schemas={("s", "R"): narrow},
            name_map={},
        )
        delta = merged[("s", "R")]
        assert delta.count(("4",)) == 1
        assert delta.count(("5",)) == 1

    def test_renamed_relation_mapped(self):
        schema = RelationSchema.of("R", ["a"])
        final = RelationSchema.of("R2", ["a"])
        du = UpdateMessage("s", 1, 0.0, DataUpdate.insert(schema, [("v",)]))
        merged = homogenize_data_updates(
            [du],
            final_schemas={("s", "R2"): final},
            name_map={("s", "R"): "R2"},
        )
        assert merged[("s", "R2")].count(("v",)) == 1

    def test_missing_attribute_becomes_null(self):
        old = RelationSchema.of("R", ["a"])
        final = RelationSchema.of("R", ["a", "b"])
        du = UpdateMessage("s", 1, 0.0, DataUpdate.insert(old, [("v",)]))
        merged = homogenize_data_updates(
            [du], final_schemas={("s", "R"): final}, name_map={}
        )
        assert merged[("s", "R")].count(("v", None)) == 1

    def test_dropped_relation_skipped(self):
        schema = RelationSchema.of("R", ["a"])
        du = UpdateMessage("s", 1, 0.0, DataUpdate.insert(schema, [("v",)]))
        merged = homogenize_data_updates([du], final_schemas={}, name_map={})
        assert merged == {}

    def test_deletes_merge_with_inserts(self):
        schema = RelationSchema.of("R", ["a"])
        du1 = UpdateMessage("s", 1, 0.0, DataUpdate.insert(schema, [("v",)]))
        du2 = UpdateMessage("s", 2, 1.0, DataUpdate.delete(schema, [("v",)]))
        merged = homogenize_data_updates(
            [du1, du2], final_schemas={("s", "R"): schema}, name_map={}
        )
        assert merged[("s", "R")].is_empty()

    def test_delete_then_reinsert_across_rename_and_drop_gap(self):
        """A row deleted under the old wide schema and reinserted under
        the renamed, narrowed one: both sides homogenize to the same
        final-schema tuple and cancel to a net no-op (the view already
        holds the surviving projection of the row)."""
        wide = RelationSchema.of("R", ["k", "b"])
        narrow = RelationSchema.of("R2", ["k"])
        delete_old = UpdateMessage(
            "s", 1, 0.0, DataUpdate.delete(wide, [("1", "x")])
        )
        reinsert_new = UpdateMessage(
            "s", 3, 2.0, DataUpdate.insert(narrow, [("1",)])
        )
        merged = homogenize_data_updates(
            [delete_old, reinsert_new],
            final_schemas={("s", "R2"): narrow},
            name_map={("s", "R"): "R2"},
        )
        assert merged[("s", "R2")].is_empty()
        # A sibling key deleted but *not* reinserted must survive as a
        # net deletion in the homogenized delta.
        delete_other = UpdateMessage(
            "s", 2, 1.0, DataUpdate.delete(wide, [("9", "y")])
        )
        merged = homogenize_data_updates(
            [delete_old, delete_other, reinsert_new],
            final_schemas={("s", "R2"): narrow},
            name_map={("s", "R"): "R2"},
        )
        assert merged[("s", "R2")].count(("9",)) == -1
        assert merged[("s", "R2")].count(("1",)) == 0

    def test_empty_du_subgroup_beside_nonempty_sc_subgroup(self):
        """A batch whose messages are all schema changes: the DU
        subgroup is empty, and homogenization must return no deltas at
        all — not empty per-relation entries — while the SC subgroup
        still partitions out intact."""
        sc1 = UpdateMessage("s", 1, 0.0, DropAttribute("R", "b"))
        sc2 = UpdateMessage("s", 2, 1.0, RenameRelation("R", "R2"))
        unit = MaintenanceUnit([sc1, sc2])
        assert data_updates_of(unit) == []
        assert schema_changes_of(unit) == [
            ("s", DropAttribute("R", "b")),
            ("s", RenameRelation("R", "R2")),
        ]
        merged = homogenize_data_updates(
            data_updates_of(unit),
            final_schemas={
                ("s", "R2"): RelationSchema.of("R2", ["a", "c"])
            },
            name_map={("s", "R"): "R2"},
        )
        assert merged == {}


class TestCombineEmissionHazards:
    """Regression pins for applicability hazards found by hypothesis."""

    def apply_to_source(self, combined):
        from repro.relational.types import AttributeType
        from repro.sources.source import DataSource

        source = DataSource("s")
        source.create_relation(
            RelationSchema.of(
                "T", [("k", AttributeType.INT), "x"]
            ),
            [(1, "v")],
        )
        for _source, change in combined:
            source.commit(change)
        return source

    def test_add_then_rename_added_folds_into_add(self):
        combined = combine_schema_changes(
            [
                ("s", AddAttribute("T", Attribute("extra"))),
                ("s", RenameAttribute("T", "extra", "extra2")),
            ]
        )
        assert combined == [("s", AddAttribute("T", Attribute("extra2")))]
        source = self.apply_to_source(combined)
        assert "extra2" in source.schema_of("T")

    def test_add_then_drop_added_cancels(self):
        combined = combine_schema_changes(
            [
                ("s", AddAttribute("T", Attribute("extra"))),
                ("s", DropAttribute("T", "extra")),
            ]
        )
        assert combined == []

    def test_adds_emitted_before_drops_avoid_empty_relation(self):
        combined = combine_schema_changes(
            [
                ("s", AddAttribute("T", Attribute("extra"))),
                ("s", DropAttribute("T", "k")),
                ("s", DropAttribute("T", "x")),
            ]
        )
        source = self.apply_to_source(combined)  # must not raise
        assert source.schema_of("T").attribute_names == ("extra",)

    def test_drop_into_rename_target_emitted_first(self):
        combined = combine_schema_changes(
            [
                ("s", DropAttribute("T", "x")),
                ("s", RenameAttribute("T", "k", "x")),
            ]
        )
        source = self.apply_to_source(combined)  # must not raise
        assert source.schema_of("T").attribute_names == ("x",)

    def test_empty_batch(self):
        assert combine_schema_changes([]) == []

    def test_restructure_mid_batch_falls_back_whole_sequence(self):
        """The conservative fallback is all-or-nothing: one
        restructure anywhere keeps every change uncombined, even the
        otherwise collapsible rename chain around it."""
        sequence = [
            ("s", RenameRelation("T", "T2")),
            ("s", RenameRelation("T2", "T3")),
            (
                "s",
                RestructureRelations(
                    dropped=("T3",),
                    new_schema=RelationSchema.of("Flat", ["a"]),
                ),
            ),
            ("s", RenameRelation("Flat", "Flat2")),
        ]
        assert combine_schema_changes(sequence) == sequence

    def test_create_mid_batch_falls_back_whole_sequence(self):
        sequence = [
            ("s", RenameAttribute("T", "x", "x2")),
            ("s", CreateRelation(RelationSchema.of("New", ["a"]))),
            ("s", DropAttribute("T", "x2")),
        ]
        assert combine_schema_changes(sequence) == sequence

    def test_rename_relation_then_attr_rename_then_drop_collapses(self):
        """A drop reached through both a relation and an attribute
        rename resolves all the way back to the original names."""
        combined = combine_schema_changes(
            [
                ("s", RenameRelation("T", "T2")),
                ("s", RenameAttribute("T2", "x", "x2")),
                ("s", DropAttribute("T2", "x2")),
            ]
        )
        assert combined == [
            ("s", DropAttribute("T", "x")),
            ("s", RenameRelation("T", "T2")),
        ]
        source = self.apply_to_source(combined)
        assert source.schema_of("T2").attribute_names == ("k",)

    def test_add_then_rename_on_renamed_relation(self):
        """add-then-rename folds into one addition even when the
        relation itself was renamed first; the emitted addition is
        addressed by the original relation name."""
        combined = combine_schema_changes(
            [
                ("s", RenameRelation("T", "T2")),
                ("s", AddAttribute("T2", Attribute("extra"))),
                ("s", RenameAttribute("T2", "extra", "extra2")),
            ]
        )
        assert combined == [
            ("s", AddAttribute("T", Attribute("extra2"))),
            ("s", RenameRelation("T", "T2")),
        ]
        source = self.apply_to_source(combined)
        assert "extra2" in source.schema_of("T2")

    def test_rename_swap_falls_back_to_original_sequence(self):
        sequence = [
            ("s", RenameAttribute("T", "k", "tmp")),
            ("s", RenameAttribute("T", "x", "k")),
            ("s", RenameAttribute("T", "tmp", "x")),
        ]
        combined = combine_schema_changes(sequence)
        assert combined == sequence  # uncombined: always applicable
        source = self.apply_to_source(combined)
        assert source.schema_of("T").attribute_names == ("x", "k")
