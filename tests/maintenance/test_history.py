"""Schema history: forward-translation of stale data updates."""

import pytest

from repro.maintenance.history import SchemaHistory
from repro.relational.delta import Delta
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType
from repro.sources.messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
)

R = RelationSchema.of("R", [("k", AttributeType.INT), "a", "b"])


def du(rows, schema=R, relation=None) -> DataUpdate:
    return DataUpdate(
        relation or schema.name, Delta.insertion(schema, rows)
    )


class TestRelationLineage:
    def test_identity_when_empty(self):
        history = SchemaHistory()
        assert history.is_empty()
        assert history.current_relation("s", "R") == "R"

    def test_rename_chain(self):
        history = SchemaHistory()
        history.record("s", RenameRelation("R", "R2"))
        history.record("s", RenameRelation("R2", "R3"))
        assert history.current_relation("s", "R") == "R3"
        assert history.current_relation("s", "R2") == "R3"

    def test_drop_terminates_lineage(self):
        history = SchemaHistory()
        history.record("s", RenameRelation("R", "R2"))
        history.record("s", DropRelation("R2"))
        assert history.current_relation("s", "R") is None
        assert history.current_relation("s", "R2") is None

    def test_restructure_drops_and_fresh_lineage(self):
        history = SchemaHistory()
        history.record(
            "s",
            RestructureRelations(
                dropped=("R",), new_schema=RelationSchema.of("Flat", ["x"])
            ),
        )
        assert history.current_relation("s", "R") is None
        assert history.current_relation("s", "Flat") == "Flat"

    def test_sources_independent(self):
        history = SchemaHistory()
        history.record("s1", RenameRelation("R", "R2"))
        assert history.current_relation("s2", "R") == "R"


class TestAttributeLineage:
    def test_attribute_rename_chain(self):
        history = SchemaHistory()
        history.record("s", RenameAttribute("R", "a", "a2"))
        history.record("s", RenameAttribute("R", "a2", "a3"))
        assert history.current_attribute("s", "R", "a") == "a3"
        assert history.current_attribute("s", "R", "a2") == "a3"

    def test_attribute_map_survives_relation_rename(self):
        history = SchemaHistory()
        history.record("s", RenameAttribute("R", "a", "a2"))
        history.record("s", RenameRelation("R", "R2"))
        assert history.current_attribute("s", "R2", "a") == "a2"

    def test_drop_attribute_tombstones(self):
        history = SchemaHistory()
        history.record("s", RenameAttribute("R", "a", "a2"))
        history.record("s", DropAttribute("R", "a2"))
        assert history.current_attribute("s", "R", "a") is None


class TestTranslation:
    def test_identity_fast_path(self):
        history = SchemaHistory()
        history.record("s", CreateRelation(RelationSchema.of("Other", ["x"])))
        update = du([(1, "x", "y")])
        assert history.translate_data_update("s", update) is update

    def test_relation_rename_translates_name(self):
        history = SchemaHistory()
        history.record("s", RenameRelation("R", "R2"))
        translated = history.translate_data_update("s", du([(1, "x", "y")]))
        assert translated.relation == "R2"
        assert translated.delta.count((1, "x", "y")) == 1
        assert translated.delta.schema.name == "R2"

    def test_attribute_rename_renames_column(self):
        history = SchemaHistory()
        history.record("s", RenameAttribute("R", "a", "alpha"))
        translated = history.translate_data_update("s", du([(1, "x", "y")]))
        assert translated.delta.schema.attribute_names == ("k", "alpha", "b")
        assert translated.delta.count((1, "x", "y")) == 1

    def test_dropped_attribute_projected_out(self):
        history = SchemaHistory()
        history.record("s", DropAttribute("R", "a"))
        translated = history.translate_data_update("s", du([(1, "x", "y")]))
        assert translated.delta.schema.attribute_names == ("k", "b")
        assert translated.delta.count((1, "y")) == 1

    def test_added_attribute_becomes_null(self):
        history = SchemaHistory()
        history.record(
            "s", AddAttribute("R", Attribute("c", AttributeType.STRING))
        )
        translated = history.translate_data_update("s", du([(1, "x", "y")]))
        assert translated.delta.schema.attribute_names == ("k", "a", "b", "c")
        assert translated.delta.count((1, "x", "y", None)) == 1

    def test_dropped_relation_translates_to_none(self):
        history = SchemaHistory()
        history.record("s", DropRelation("R"))
        assert history.translate_data_update("s", du([(1, "x", "y")])) is None

    def test_combined_rename_and_drop(self):
        history = SchemaHistory()
        history.record("s", RenameRelation("R", "R2"))
        history.record("s", RenameAttribute("R2", "a", "alpha"))
        history.record("s", DropAttribute("R2", "b"))
        translated = history.translate_data_update("s", du([(7, "p", "q")]))
        assert translated.relation == "R2"
        assert translated.delta.schema.attribute_names == ("k", "alpha")
        assert translated.delta.count((7, "p")) == 1

    def test_counts_preserved(self):
        history = SchemaHistory()
        history.record("s", RenameRelation("R", "R2"))
        delta = Delta(R)
        delta.add((1, "x", "y"), 3)
        delta.add((2, "w", "z"), -2)
        translated = history.translate_data_update(
            "s", DataUpdate("R", delta)
        )
        assert translated.delta.count((1, "x", "y")) == 3
        assert translated.delta.count((2, "w", "z")) == -2

    def test_types_preserved(self):
        history = SchemaHistory()
        history.record("s", RenameAttribute("R", "k", "key"))
        translated = history.translate_data_update("s", du([(1, "x", "y")]))
        assert (
            translated.delta.schema.attribute("key").type
            is AttributeType.INT
        )
