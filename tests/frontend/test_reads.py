"""The read-serving front end: timelines, watermarks, consistency
levels, staleness and queueing latency."""

import pytest

from repro.core.strategies import PESSIMISTIC
from repro.experiments.testbed import build_sharded_testbed
from repro.frontend.reads import (
    READ_COMMITTED_VERSION,
    READ_LATEST,
    ReadFrontEnd,
    ReadWorkload,
    ShardTimeline,
)
from repro.sim.costs import CostModel
from repro.sim.engine import InstallRecord
from repro.sim.metrics import Metrics


def _record(at, size, *messages, view="A"):
    return InstallRecord(at, {view: size}, tuple(messages))


class TestShardTimeline:
    def test_initial_version_only(self):
        timeline = ShardTimeline([], {"A": 10})
        assert timeline.version_at(0.0) == 0
        assert timeline.version_at(99.0) == 0
        assert timeline.watermark_at(99.0) == 0.0
        assert timeline.view_sizes["A"] == [10]

    def test_in_order_installs_advance_watermark(self):
        timeline = ShardTimeline(
            [
                _record(1.5, 11, ("src1", 1, 1.0)),
                _record(2.5, 12, ("src1", 2, 2.0)),
            ],
            {"A": 10},
        )
        assert timeline.times == [0.0, 1.5, 2.5]
        assert timeline.watermarks == [0.0, 1.0, 2.0]
        assert timeline.view_sizes["A"] == [10, 11, 12]
        assert timeline.version_at(2.0) == 1
        assert timeline.watermark_at(2.0) == 1.0

    def test_out_of_order_install_blocks_watermark_until_gap_fills(self):
        # seqno 2 (commit 2.0) installs before seqno 1 (commit 1.0):
        # the watermark stays at 0 until the prefix is complete.
        timeline = ShardTimeline(
            [
                _record(1.0, 11, ("src1", 2, 2.0)),
                _record(2.0, 12, ("src1", 1, 1.0)),
            ],
            {"A": 10},
        )
        assert timeline.watermarks == [0.0, 0.0, 2.0]

    def test_batched_install_covers_both_commits(self):
        timeline = ShardTimeline(
            [_record(3.0, 14, ("src1", 1, 1.0), ("src1", 2, 2.0))],
            {"A": 10},
        )
        assert timeline.watermarks == [0.0, 2.0]

    def test_staleness_ages_the_oldest_invisible_commit(self):
        timeline = ShardTimeline(
            [_record(1.5, 11, ("src1", 1, 1.0))], {"A": 10}
        )
        # At time 1.2 the commit at 1.0 is delivered but not installed.
        assert timeline.staleness(0.0, 1.2) == pytest.approx(0.2)
        # Fully fresh once installed.
        assert timeline.staleness(1.0, 2.0) == 0.0
        # A commit in the future of the read is not staleness yet.
        assert timeline.staleness(0.0, 0.5) == 0.0


def _two_shard_frontend(servers=4):
    # Shard 0 maintains A briskly; shard 1 lags on B — the global
    # watermark is pinned by the laggard.
    timelines = {
        0: ShardTimeline(
            [
                _record(1.5, 11, ("src1", 1, 1.0)),
                _record(2.5, 12, ("src1", 2, 2.0)),
            ],
            {"A": 10},
        ),
        1: ShardTimeline(
            [_record(4.0, 6, ("src2", 1, 1.2), view="B")], {"B": 5}
        ),
    }
    cost = CostModel()
    cost.read_servers = servers
    return ReadFrontEnd(timelines, {"A": 0, "B": 1}, cost, 5.0)


class TestReadFrontEnd:
    def test_global_watermark_is_min_across_shards(self):
        frontend = _two_shard_frontend()
        assert frontend.global_watermark_at(3.0) == 0.0
        assert frontend.global_watermark_at(4.0) == pytest.approx(1.2)

    def test_committed_level_serves_older_version_than_latest(self):
        frontend = _two_shard_frontend()
        # Reads land only on A (shard 0) around t=3: latest serves
        # version 2 (fresh), committed is cut back to version 0 by the
        # lagging shard and pays staleness from commit 1.0 onward.
        frontend.view_shard = {"A": 0}
        workload = ReadWorkload(
            count=500, seed=3, scan_fraction=0.0, start=2.9, horizon=3.0
        )
        latest = frontend.serve(workload, READ_LATEST)
        committed = frontend.serve(workload, READ_COMMITTED_VERSION)
        assert latest.mean_staleness == 0.0
        assert committed.stale_fraction == 1.0
        assert committed.mean_staleness == pytest.approx(1.95, abs=0.06)

    def test_unknown_level_rejected(self):
        frontend = _two_shard_frontend()
        with pytest.raises(ValueError):
            frontend.serve(ReadWorkload(count=1), "read_dirty")

    def test_same_seed_same_report(self):
        frontend = _two_shard_frontend()
        workload = ReadWorkload(count=2000, seed=21)
        assert frontend.serve(workload) == frontend.serve(workload)

    def test_single_server_queues_simultaneous_arrivals(self):
        contended = _two_shard_frontend(servers=1).serve(
            ReadWorkload(count=3000, seed=5, start=1.0, horizon=1.001)
        )
        relaxed = _two_shard_frontend(servers=64).serve(
            ReadWorkload(count=3000, seed=5, start=1.0, horizon=1.001)
        )
        assert contended.mean_wait > relaxed.mean_wait
        assert contended.p99_latency > relaxed.p99_latency

    def test_scans_cost_more_than_points(self):
        frontend = _two_shard_frontend()
        points = frontend.serve(
            ReadWorkload(count=1000, seed=8, scan_fraction=0.0)
        )
        scans = frontend.serve(
            ReadWorkload(count=1000, seed=8, scan_fraction=1.0)
        )
        assert scans.mean_latency > points.mean_latency

    def test_metrics_charged_when_provided(self):
        frontend = _two_shard_frontend()
        metrics = Metrics()
        report = frontend.serve(
            ReadWorkload(count=400, seed=2), metrics=metrics
        )
        assert metrics.reads_served == report.count == 400
        assert metrics.stale_reads == round(
            report.stale_fraction * report.count
        )
        assert metrics.read_latency_time == pytest.approx(
            report.mean_latency * report.count
        )

    def test_report_summary_round_trips_keys(self):
        frontend = _two_shard_frontend()
        summary = frontend.serve(ReadWorkload(count=50, seed=1)).summary()
        for key in (
            "level",
            "count",
            "p50_latency",
            "p99_latency",
            "mean_staleness",
            "stale_fraction",
        ):
            assert key in summary


class TestForWarehouse:
    def test_front_end_built_from_real_run(self):
        testbed = build_sharded_testbed(
            PESSIMISTIC, shards=2, tuples_per_relation=40
        )
        testbed.schedule_du_workload(16, start=0.05, interval=0.05)
        testbed.run()
        frontend = testbed.read_front_end()
        assert set(frontend.view_shard) == set(
            testbed.warehouse.view_names()
        )
        report = frontend.serve(
            ReadWorkload(count=5000, seed=17), READ_LATEST
        )
        assert report.count == 5000
        assert report.p99_latency >= report.p50_latency >= 0.0
        committed = frontend.serve(
            ReadWorkload(count=5000, seed=17), READ_COMMITTED_VERSION
        )
        # The committed cut can only serve versions at or behind latest.
        assert committed.mean_staleness >= report.mean_staleness


class TestServeIsBisectFree:
    """The serving loop's micro-benchmark guarantee: reads are served
    in ``at`` order with monotone pointers, so ``serve()`` performs
    ZERO binary searches regardless of the read count — O(reads +
    versions) per shard, not O(reads * log versions)."""

    def _counting_frontend(self, monkeypatch):
        frontend = _two_shard_frontend()
        frontend._global_watermark_steps()  # warm the cached step fn
        from bisect import bisect_right as real_bisect_right

        import repro.frontend.reads as reads_module

        calls = []

        def counting(*args, **kwargs):
            calls.append(args)
            return real_bisect_right(*args, **kwargs)

        monkeypatch.setattr(reads_module, "bisect_right", counting)
        return frontend, calls

    @pytest.mark.parametrize("count", [200, 2000])
    def test_serve_performs_zero_bisect_calls(self, monkeypatch, count):
        frontend, calls = self._counting_frontend(monkeypatch)
        for level in (READ_LATEST, READ_COMMITTED_VERSION):
            report = frontend.serve(
                ReadWorkload(count=count, seed=17), level
            )
            assert report.count == count
        assert len(calls) == 0

    def test_staleness_of_matches_bisecting_staleness(self):
        timeline = ShardTimeline(
            [
                _record(1.5, 11, ("src1", 1, 1.0)),
                _record(2.5, 12, ("src1", 2, 2.0)),
            ],
            {"A": 10},
        )
        for version in range(len(timeline.times)):
            watermark = timeline.watermarks[version]
            for at in (0.5, 1.2, 1.8, 2.6, 4.0):
                assert timeline.staleness_of(version, at) == timeline.staleness(
                    watermark, at
                )

    def test_pointer_merge_matches_bisect_reports(self):
        # Belt and braces: the pointer-based serve must produce the
        # exact same report a from-scratch front end does on a real
        # sharded run at both consistency levels (the values, not just
        # the complexity, are preserved).
        testbed = build_sharded_testbed(
            PESSIMISTIC, shards=2, tuples_per_relation=40
        )
        testbed.schedule_du_workload(16, start=0.05, interval=0.05)
        testbed.run()
        frontend = testbed.read_front_end()
        again = testbed.read_front_end()
        for level in (READ_LATEST, READ_COMMITTED_VERSION):
            workload = ReadWorkload(count=3000, seed=23)
            assert frontend.serve(workload, level) == again.serve(
                workload, level
            )
