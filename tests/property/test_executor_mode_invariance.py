"""The compiled kernel is observationally invisible to the simulation.

The executor behind :func:`repro.relational.execute` is a wall-clock
optimization only: virtual costs are charged from the cost model, so a
full Dyno run — any strategy, with faults, with parallel workers, with
the sharded coordinator, with schema changes conflicting mid-stream —
must produce the identical final view extent, the identical committed
``(source, seqno)`` set *and the identical final virtual clock* whether
the compiled plans or the naive oracle evaluate every query.  This is
the run-level face of the per-query equivalence proven in
``test_executor_equivalence.py``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.relational.executor import executor_mode, set_executor_mode
from repro.views.consistency import check_convergence

strategies = st.sampled_from([PESSIMISTIC, OPTIMISTIC])


@pytest.fixture(autouse=True)
def restore_executor_mode():
    previous = executor_mode()
    yield
    set_executor_mode(previous)


def _run(
    mode,
    strategy,
    seed,
    du_count,
    sc_count,
    workers=None,
    fault_seed=None,
    shards=1,
):
    set_executor_mode(mode)
    testbed = build_testbed(
        strategy,
        tuples_per_relation=30,
        parallel_workers=workers,
        shards=shards,
    )
    if fault_seed is not None:
        plan = FaultPlan.random(
            fault_seed,
            sources=list(testbed.engine.sources),
            horizon=2.0,
            max_crashes=1,
            crash_length=(0.1, 0.5),
        )
        testbed.engine.install_faults(FaultInjector(plan))
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count, start=0.0, interval=0.01, seed=seed, key_domain=8
        )
    )
    if sc_count:
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                sc_count, start=0.05, interval=0.07, seed=seed + 1
            )
        )
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    committed = testbed.committed_updates()
    return testbed, extent, committed, testbed.metrics.elapsed


def assert_invariant(arm_kwargs):
    naive = _run("naive", **arm_kwargs)
    compiled = _run("compiled", **arm_kwargs)
    assert compiled[1] == naive[1]  # extent
    assert compiled[2] == naive[2]  # committed (source, seqno) set
    assert compiled[3] == naive[3]  # final virtual clock, bit-identical
    report = check_convergence(compiled[0].manager)
    assert report.consistent, report.summary()


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=1, max_value=20),
    sc_count=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_mode_invariance_serial(strategy, seed, du_count, sc_count):
    assert_invariant(
        dict(
            strategy=strategy,
            seed=seed,
            du_count=du_count,
            sc_count=sc_count,
        )
    )


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=2, max_value=6),
    du_count=st.integers(min_value=1, max_value=12),
    sc_count=st.integers(min_value=0, max_value=2),
    faulted=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_mode_invariance_parallel_and_faulted(
    strategy, seed, workers, du_count, sc_count, faulted
):
    assert_invariant(
        dict(
            strategy=strategy,
            seed=seed,
            du_count=du_count,
            sc_count=sc_count,
            workers=workers,
            fault_seed=seed + 77 if faulted else None,
        )
    )


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=2, max_value=12),
    sc_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=8, deadline=None)
def test_mode_invariance_sharded(strategy, seed, du_count, sc_count):
    assert_invariant(
        dict(
            strategy=strategy,
            seed=seed,
            du_count=du_count,
            sc_count=sc_count,
            shards=2,
        )
    )
