"""End-to-end convergence under randomized concurrent workloads.

The paper's correctness claim (Section 4.4): Dyno always reaches a legal
order, so after quiescence the materialized view reflects the final
source states — for *any* interleaving of data updates and schema
changes, under both the pessimistic and the optimistic strategy.  The
blind-merge baseline must also converge (it merges more than needed but
never reorders illegally).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import BLIND_MERGE, OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.views.consistency import check_convergence

strategies = st.sampled_from([PESSIMISTIC, OPTIMISTIC, BLIND_MERGE])


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=0, max_value=25),
    sc_count=st.integers(min_value=0, max_value=5),
    du_interval=st.floats(min_value=0.0, max_value=2.0),
    sc_interval=st.floats(min_value=0.0, max_value=30.0),
)
@settings(max_examples=40, deadline=None)
def test_mixed_workload_converges(
    strategy, seed, du_count, sc_count, du_interval, sc_interval
):
    testbed = build_testbed(strategy, tuples_per_relation=30, seed=seed)
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count, start=0.0, interval=du_interval, seed=seed
        )
    )
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(
            sc_count, start=0.0, interval=sc_interval, seed=seed + 1
        )
    )
    testbed.run()
    assert testbed.manager.umq.is_empty()
    report = check_convergence(testbed.manager)
    assert report.consistent, report.summary()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=25, deadline=None)
def test_du_only_stream_converges_with_compensation(seed, du_count):
    """Types (1)-(2) anomalies only: compensation must be exact."""
    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=30, seed=seed)
    # Dense arrivals maximize the concurrency windows.
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count, start=0.0, interval=0.01, seed=seed
        )
    )
    testbed.run()
    report = check_convergence(testbed.manager)
    assert report.consistent, report.summary()
    assert testbed.metrics.aborts == 0  # DUs never break queries


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    sc_count=st.integers(min_value=1, max_value=6),
    sc_interval=st.floats(min_value=0.0, max_value=30.0),
)
@settings(max_examples=25, deadline=None)
def test_sc_only_stream_converges(seed, sc_count, sc_interval):
    """Types (3)-(4): schema-change storms still converge."""
    testbed = build_testbed(OPTIMISTIC, tuples_per_relation=30, seed=seed)
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(
            sc_count, start=0.0, interval=sc_interval, seed=seed
        )
    )
    testbed.run()
    report = check_convergence(testbed.manager)
    assert report.consistent, report.summary()
