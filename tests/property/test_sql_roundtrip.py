"""SQL front-end round-trip: render → parse preserves the query.

The AST's ``sql()`` renders without source qualifiers (plain SQL for a
single engine), so the round-trip is checked through the *sourced*
rendering the parser consumes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.predicate import (
    Comparison,
    InPredicate,
    attr,
    conjunction,
)
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.sql import parse_query

ALIASES = ("A", "B", "C")
ATTRS = ("k", "x", "y")


def sourced_sql(query: SPJQuery) -> str:
    """Render with ``source.Relation alias`` FROM items."""
    select = ", ".join(ref.qualified() for ref in query.projection)
    from_clause = ", ".join(
        f"{ref.source}.{ref.relation} {ref.alias}"
        for ref in query.relations
    )
    terms = [join.sql() for join in query.joins]
    from repro.relational.predicate import TRUE

    if query.selection is not TRUE:
        terms.append(query.selection.sql())
    sql = f"SELECT {select} FROM {from_clause}"
    if terms:
        sql += " WHERE " + " AND ".join(terms)
    return sql


@st.composite
def spj_queries(draw) -> SPJQuery:
    alias_count = draw(st.integers(min_value=1, max_value=3))
    aliases = ALIASES[:alias_count]
    relations = tuple(
        RelationRef(f"src{index}", f"Rel{alias}", alias)
        for index, alias in enumerate(aliases)
    )
    projection = tuple(
        attr(draw(st.sampled_from(aliases)), draw(st.sampled_from(ATTRS)))
        for _ in range(draw(st.integers(min_value=1, max_value=4)))
    )
    joins = tuple(
        JoinCondition(
            attr(aliases[index], "k"), attr(aliases[index + 1], "k")
        )
        for index in range(alias_count - 1)
    )
    terms = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        owner = draw(st.sampled_from(aliases))
        name = draw(st.sampled_from(ATTRS))
        kind = draw(st.sampled_from(["cmp_int", "cmp_str", "in"]))
        if kind == "cmp_int":
            terms.append(
                Comparison(
                    attr(owner, name),
                    draw(st.sampled_from(["=", "<", ">", "<=", ">=", "!="])),
                    draw(st.integers(min_value=-5, max_value=5)),
                )
            )
        elif kind == "cmp_str":
            terms.append(
                Comparison(
                    attr(owner, name),
                    "=",
                    draw(st.sampled_from(["a", "o'hara", "x y"])),
                )
            )
        else:
            values = draw(
                st.frozensets(
                    st.integers(min_value=0, max_value=9),
                    min_size=1,
                    max_size=4,
                )
            )
            terms.append(InPredicate(attr(owner, name), values))
    return SPJQuery(relations, projection, joins, conjunction(terms))


@given(spj_queries())
@settings(max_examples=100, deadline=None)
def test_roundtrip_preserves_structure(query):
    parsed = parse_query(sourced_sql(query))
    assert parsed.relations == query.relations
    assert parsed.projection == query.projection
    assert set(parsed.joins) == set(query.joins)
    assert parsed.selection == query.selection


@given(spj_queries())
@settings(max_examples=50, deadline=None)
def test_roundtrip_is_idempotent(query):
    once = parse_query(sourced_sql(query))
    twice = parse_query(sourced_sql(once))
    assert once == twice
