"""Graph-correction invariants over random dependency graphs.

Theorem 2 / Definition 7: the corrected order is *legal* — every
dependency points forward (within-group counts as satisfied, the group
is maintained atomically).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependencies import Dependency, DependencyKind
from repro.core.graph import DependencyGraph


@st.composite
def graphs(draw):
    node_count = draw(st.integers(min_value=1, max_value=16))
    edge_count = draw(st.integers(min_value=0, max_value=40))
    dependencies = []
    for _ in range(edge_count):
        before = draw(st.integers(min_value=0, max_value=node_count - 1))
        after = draw(st.integers(min_value=0, max_value=node_count - 1))
        if before != after:
            kind = draw(
                st.sampled_from(
                    [DependencyKind.CONCURRENT, DependencyKind.SEMANTIC]
                )
            )
            dependencies.append(Dependency(before, after, kind))
    return DependencyGraph(node_count, dependencies)


@given(graphs())
@settings(max_examples=150, deadline=None)
def test_legal_order_satisfies_every_dependency(graph):
    order = graph.legal_order()
    group_of = {}
    for group_index, group in enumerate(order):
        for member in group:
            group_of[member] = group_index
    for dependency in graph.dependencies:
        assert (
            group_of[dependency.before_index]
            <= group_of[dependency.after_index]
        )


@given(graphs())
@settings(max_examples=150, deadline=None)
def test_legal_order_is_a_partition(graph):
    order = graph.legal_order()
    flat = sorted(member for group in order for member in group)
    assert flat == list(range(graph.node_count))


@given(graphs())
@settings(max_examples=100, deadline=None)
def test_groups_are_exactly_the_sccs(graph):
    order = graph.legal_order()
    sccs = {
        frozenset(component)
        for component in graph.strongly_connected_components()
    }
    assert {frozenset(group) for group in order} == sccs


@given(graphs())
@settings(max_examples=100, deadline=None)
def test_acyclic_graph_never_merges(graph):
    if graph.cycle_count() == 0:
        order = graph.legal_order()
        assert all(len(group) == 1 for group in order)


@given(graphs())
@settings(max_examples=100, deadline=None)
def test_no_unsafe_dependencies_after_renumbering(graph):
    """Renumber nodes by their corrected position: Definition 6 must
    find nothing unsafe in the corrected schedule."""
    order = graph.legal_order()
    position = {}
    for group_index, group in enumerate(order):
        for member in group:
            position[member] = group_index
    for dependency in graph.dependencies:
        renumbered = Dependency(
            position[dependency.before_index],
            position[dependency.after_index],
            dependency.kind,
        )
        assert not renumbered.is_unsafe()
