"""Compiled kernel vs naive executor over random queries (hypothesis).

The compiled/columnar kernel (:mod:`repro.relational.plan`) must be a
*drop-in* replacement for the naive evaluator: identical bags, identical
result-schema names, and — when a query dangles after a schema change —
the identical exception class.  These properties drive random SPJ
queries (joins, pushdown-able and residual selections, IN-lists,
unqualified and dangling references) over bag tables with duplicates
and NULLs, then keep checking equivalence as signed deltas and
drop/rename schema changes mutate the tables underneath the plan cache.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.delta import Delta
from repro.relational.errors import RelationalError
from repro.relational.executor import execute_naive
from repro.relational.plan import execute_compiled
from repro.relational.predicate import (
    AttrComparison,
    Comparison,
    InPredicate,
    attr,
    conjunction,
)
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

R = RelationSchema.of(
    "R", [("k", AttributeType.INT), "a", ("b", AttributeType.FLOAT)]
)
S = RelationSchema.of("S", [("k", AttributeType.INT), "c"])
T = RelationSchema.of("T", [("j", AttributeType.INT), "d"])

key = st.one_of(st.integers(min_value=0, max_value=3), st.none())
word = st.one_of(st.sampled_from(["p", "q", "r"]), st.none())
price = st.one_of(st.sampled_from([0.5, 1.5, 2.5]), st.none())

# Duplicates matter: draw few distinct values over up to 10 rows so the
# same tuple recurs with multiplicity > 1.
r_rows = st.lists(st.tuples(key, word, price), max_size=10)
s_rows = st.lists(st.tuples(key, word), max_size=10)
t_rows = st.lists(st.tuples(key, word), max_size=10)


def _selection(kind: int, threshold):
    if kind == 0:
        return conjunction([])
    if kind == 1:
        return Comparison(attr("R", "k"), ">=", threshold)
    if kind == 2:
        return conjunction(
            [
                Comparison(attr("R", "k"), ">=", threshold),
                InPredicate(attr("S", "k"), frozenset({0, 1, threshold})),
            ]
        )
    if kind == 3:  # residual multi-relation term
        return AttrComparison(attr("R", "k"), "<=", attr("T", "j"))
    if kind == 4:  # unqualified reference (unique: only R has "a")
        return Comparison(attr("a"), "=", "p")
    # dangling reference — both executors must raise the same class
    return Comparison(attr("R", "missing"), "=", 1)


def _projection(kind: int):
    if kind == 0:
        return (attr("R", "a"), attr("S", "c"), attr("T", "d"))
    if kind == 1:  # unqualified but unique names
        return (attr("b"), attr("R", "k"))
    if kind == 2:  # ambiguous unqualified name ("k" is in R and S)
        return (attr("k"),)
    # dangling projection
    return (attr("T", "gone"),)


def _query(selection_kind: int, projection_kind: int, threshold: int):
    return SPJQuery(
        relations=(
            RelationRef("s", "R", "R"),
            RelationRef("s", "S", "S"),
            RelationRef("s", "T", "T"),
        ),
        projection=_projection(projection_kind),
        joins=(
            JoinCondition(attr("R", "k"), attr("S", "k")),
            JoinCondition(attr("S", "k"), attr("T", "j")),
        ),
        selection=_selection(selection_kind, threshold),
    )


def _outcome(executor, query, tables):
    """Result bag + schema names, or the raised exception class."""
    try:
        table = executor(query, tables)
    except RelationalError as error:
        return ("raised", type(error).__name__)
    return (
        "ok",
        Counter(dict(table.items())),
        tuple(table.schema.attribute_names),
    )


def assert_equivalent(query, tables):
    naive = _outcome(execute_naive, query, tables)
    compiled = _outcome(execute_compiled, query, tables)
    assert naive == compiled


@given(
    r_rows,
    s_rows,
    t_rows,
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=120, deadline=None)
def test_random_queries_equivalent(
    r_data, s_data, t_data, selection_kind, projection_kind, threshold
):
    tables = {
        "R": Table(R, r_data),
        "S": Table(S, s_data),
        "T": Table(T, t_data),
    }
    query = _query(selection_kind, projection_kind, threshold)
    assert_equivalent(query, tables)


@given(
    r_rows,
    s_rows,
    r_rows,
    st.data(),
    st.integers(min_value=0, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_equivalence_survives_signed_deltas(
    r_data, s_data, extra_rows, data, selection_kind
):
    """Apply a signed delta (deletes of resident rows + fresh inserts)
    and re-check: the cached plan must see the new extent."""
    tables = {
        "R": Table(R, r_data),
        "S": Table(S, s_data),
        "T": Table(T, []),
    }
    query = _query(selection_kind, 0, 1)
    assert_equivalent(query, tables)

    target = tables["R"]
    delta = Delta(target.schema)
    resident = list(target.items())
    if resident:
        victims = data.draw(
            st.lists(
                st.sampled_from(resident), max_size=len(resident)
            )
        )
        for row, count in set(victims):
            if delta.count(row) > -count:
                delta.add(row, -1)
    for row in extra_rows:
        delta.add(row, 1)
    target.apply_delta(delta)
    assert_equivalent(query, tables)


@given(
    r_rows,
    s_rows,
    t_rows,
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=3),
    st.sampled_from(
        [
            ("drop", "R", "a"),
            ("drop", "S", "c"),
            ("drop", "R", "k"),
            ("rename", "T", "d", "dd"),
            ("rename", "R", "a", "a2"),
        ]
    ),
)
@settings(max_examples=80, deadline=None)
def test_equivalence_survives_schema_changes(
    r_data, s_data, t_data, selection_kind, projection_kind, change
):
    """Drop/rename an attribute under a cached plan: both executors must
    agree afterwards — on the new result *or* on the exception class
    (dangling references are the broken-query anomaly's raw material)."""
    tables = {
        "R": Table(R, r_data),
        "S": Table(S, s_data),
        "T": Table(T, t_data),
    }
    query = _query(selection_kind, projection_kind, 1)
    assert_equivalent(query, tables)  # populate the plan cache

    if change[0] == "drop":
        tables[change[1]].drop_attribute(change[2])
    else:
        tables[change[1]].rename_attribute(change[2], change[3])
    assert_equivalent(query, tables)


@pytest.mark.parametrize("projection_kind", [2, 3])
def test_error_classes_match_exactly(projection_kind):
    """The canonical dangling/ambiguous cases raise identical classes."""
    tables = {
        "R": Table(R, [(1, "p", 0.5)]),
        "S": Table(S, [(1, "q")]),
        "T": Table(T, [(1, "r")]),
    }
    query = _query(0, projection_kind, 1)
    naive = _outcome(execute_naive, query, tables)
    compiled = _outcome(execute_compiled, query, tables)
    assert naive[0] == "raised"
    assert naive == compiled
