"""The auxiliary self-maintenance store is observationally invisible.

A replica-served answer must be byte-equal to the answer a zero-latency
round trip would have returned at the same instant: the replica is the
projection of the live relation onto the view's needed columns, synced
through every committed gap delta before serving (an SC in the gap
drops it, exactly the snapshot cache's Theorem 1 rule).  So for any
workload — DU-only or conflicting, serial or parallel, cached or not,
batched or not, faulted or crash-recovered — the final view extent and
the committed (source, seqno) set with the store ON must be identical
to the store-OFF run.  Only the cost/round-trip metrics may differ.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.maintenance.grouping import BatchPolicy
from repro.views.consistency import check_convergence

strategies = st.sampled_from([PESSIMISTIC, OPTIMISTIC])

#: keys drawn from a narrow domain so probes repeat while the relation
#: extents keep churning (replica sync work)
HOT_KEY_DOMAIN = 8


def _run(
    strategy,
    self_maintenance,
    seed,
    du_count,
    sc_count,
    workers=None,
    fault_seed=None,
    snapshot_cache=False,
    batching=False,
    crash_plan=None,
):
    testbed = build_testbed(
        strategy,
        tuples_per_relation=30,
        parallel_workers=workers,
        snapshot_cache=snapshot_cache,
        self_maintenance=self_maintenance,
        batch_policy=BatchPolicy(max_batch_size=8) if batching else None,
        crash_plan=crash_plan,
    )
    if fault_seed is not None:
        plan = FaultPlan.random(
            fault_seed,
            sources=list(testbed.engine.sources),
            horizon=2.0,
            max_crashes=1,
            crash_length=(0.1, 0.5),
        )
        testbed.engine.install_faults(FaultInjector(plan))
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count,
            start=0.0,
            interval=0.01,
            seed=seed,
            key_domain=HOT_KEY_DOMAIN,
        )
    )
    if sc_count:
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                sc_count, start=0.05, interval=0.07, seed=seed + 1
            )
        )
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    committed = testbed.committed_updates()
    return testbed, extent, committed


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=1, max_value=20),
    sc_count=st.integers(min_value=0, max_value=3),
    snapshot_cache=st.booleans(),
    batching=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_aux_matches_bare_serial(
    strategy, seed, du_count, sc_count, snapshot_cache, batching
):
    off, extent_off, committed_off = _run(
        strategy, False, seed, du_count, sc_count,
        snapshot_cache=snapshot_cache, batching=batching,
    )
    on, extent_on, committed_on = _run(
        strategy, True, seed, du_count, sc_count,
        snapshot_cache=snapshot_cache, batching=batching,
    )
    assert extent_on == extent_off
    assert committed_on == committed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()
    # On a DU-only stream the store can only remove round trips.  (With
    # SCs in the mix the *count* may legitimately differ either way:
    # aux-served DU units finish sooner, which changes how queued SCs
    # coalesce into units and hence how many adaptation scans travel —
    # the converged state above is the invariant, not the trip tally.)
    if sc_count == 0:
        assert (
            on.metrics.source_round_trips
            <= off.metrics.source_round_trips
        )
    # Every saved trip is accounted to exactly one local mechanism.
    assert on.metrics.saved_round_trips == (
        on.metrics.aux_hits + on.metrics.cache_hits
    )


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=1, max_value=8),
    du_count=st.integers(min_value=1, max_value=15),
    sc_count=st.integers(min_value=0, max_value=2),
    snapshot_cache=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_aux_matches_bare_parallel(
    strategy, seed, workers, du_count, sc_count, snapshot_cache
):
    off, extent_off, committed_off = _run(
        strategy, False, seed, du_count, sc_count, workers,
        snapshot_cache=snapshot_cache,
    )
    on, extent_on, committed_on = _run(
        strategy, True, seed, du_count, sc_count, workers,
        snapshot_cache=snapshot_cache,
    )
    assert on.manager.umq.is_empty()
    assert extent_on == extent_off
    assert committed_on == committed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()
    # Every aux serve bypassed the channel admission path; the audit
    # records the channel state it skipped past.
    for record in on.scheduler.aux_audit:
        assert record["applied_rows"] >= 0


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=2, max_value=6),
    du_count=st.integers(min_value=1, max_value=12),
    sc_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=10, deadline=None)
def test_aux_matches_bare_under_faults(
    strategy, seed, workers, du_count, sc_count
):
    """Same equivalence with a PR 1 fault plan injected in both arms."""
    fault_seed = seed + 77
    off, extent_off, committed_off = _run(
        strategy, False, seed, du_count, sc_count, workers, fault_seed
    )
    on, extent_on, committed_on = _run(
        strategy, True, seed, du_count, sc_count, workers, fault_seed
    )
    assert extent_on == extent_off
    assert committed_on == committed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=4, max_value=16),
    sc_count=st.integers(min_value=0, max_value=2),
    crash_hit=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=10, deadline=None)
def test_aux_matches_bare_across_crashes(
    seed, du_count, sc_count, crash_hit
):
    """Replicas are volatile: a crash clears them, recovery restores
    only checkpointed entries at or below the committed watermark — and
    the recovered run still converges to the store-off oracle."""
    from repro.recovery import CrashPlan

    off, extent_off, committed_off = _run(
        PESSIMISTIC, False, seed, du_count, sc_count
    )
    on, extent_on, committed_on = _run(
        PESSIMISTIC, True, seed, du_count, sc_count,
        crash_plan=CrashPlan("serial.pre_maintain", crash_hit),
    )
    assert extent_on == extent_off
    assert committed_on == committed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()


def test_hot_key_du_stream_is_fully_self_maintained():
    """Deterministic regression: a DU-only stream over a seeded store
    never pays a source round trip — every unit is self-maintained
    (guards against the store silently degrading to all-miss)."""
    on, _extent, _committed = _run(PESSIMISTIC, True, 5, 40, 0)
    assert on.metrics.aux_hits > 0
    assert on.metrics.aux_misses == 0
    assert on.metrics.source_round_trips == 0
    assert on.metrics.data_unit_rounds > 0
    assert (
        on.metrics.self_maintained_units == on.metrics.data_unit_rounds
    )


def test_schema_change_invalidates_then_reseeds():
    """An SC drops the touched replicas (Theorem 1 rule); adaptation's
    travelling scans re-seed them, so later DU probes hit again."""
    with_sc, _extent, _committed = _run(PESSIMISTIC, True, 5, 40, 2)
    assert with_sc.metrics.aux_invalidations_sc >= 1
    assert with_sc.metrics.aux_hits > 0
    report = check_convergence(with_sc.manager)
    assert report.consistent, report.summary()
