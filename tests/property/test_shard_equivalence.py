"""The sharded warehouse is observationally equivalent to one scheduler.

Shard worlds are independent full warehouses whose routers filter only
UMQ delivery, and per-shard legal orders are Theorem 2 legal orders
restricted to each shard's footprint — so for ANY shard count, broken-
query strategy, worker count, fault plan or crash plan, the final
per-view extents and the union of committed (source, seqno) sets must
be byte-identical to the 1-shard oracle.  Checked end to end on
randomized DU/SC streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_sharded_testbed
from repro.faults.plan import FaultPlan
from repro.recovery import CrashPlan

strategies = st.sampled_from([PESSIMISTIC, OPTIMISTIC])


def _run(
    strategy,
    shards,
    seed,
    du_count,
    sc_count=0,
    workers=None,
    fault_seed=None,
    crash_seed=None,
    tmp_path=None,
):
    kwargs = {}
    if fault_seed is not None:
        kwargs["fault_plan"] = FaultPlan.random(
            fault_seed,
            sources=("src1", "src2", "src3"),
            horizon=2.0,
            max_crashes=1,
            crash_length=(0.1, 0.4),
        )
    if crash_seed is not None:
        kwargs["journal"] = True
        kwargs["crash_plan"] = CrashPlan.random(crash_seed)
        kwargs["journal_dir"] = tmp_path / f"shards-{shards}"
    testbed = build_sharded_testbed(
        strategy,
        shards=shards,
        tuples_per_relation=30,
        parallel_workers=workers,
        **kwargs,
    )
    testbed.schedule_du_workload(
        du_count, start=0.05, interval=0.05, seed=seed
    )
    if sc_count:
        testbed.schedule_sc_workload(
            sc_count, start=0.6, interval=4.0, seed=seed + 4
        )
    testbed.run()
    assert testbed.check_consistency()
    return testbed.extent_rows(), testbed.committed_updates()


@given(strategies, st.integers(2, 4), st.integers(0, 40), st.integers(8, 24))
@settings(max_examples=10, deadline=None)
def test_du_streams_match_oracle(strategy, shards, seed, du_count):
    oracle = _run(strategy, 1, seed, du_count)
    assert _run(strategy, shards, seed, du_count) == oracle


@given(strategies, st.integers(2, 4), st.integers(0, 20))
@settings(max_examples=6, deadline=None)
def test_sc_streams_cross_the_barrier_equivalently(strategy, shards, seed):
    oracle = _run(strategy, 1, seed, 16, sc_count=2)
    assert _run(strategy, shards, seed, 16, sc_count=2) == oracle


@given(st.integers(2, 4), st.integers(0, 20), st.sampled_from([2, 3]))
@settings(max_examples=6, deadline=None)
def test_parallel_workers_per_shard_match_oracle(shards, seed, workers):
    oracle = _run(PESSIMISTIC, 1, seed, 16, workers=workers)
    assert _run(PESSIMISTIC, shards, seed, 16, workers=workers) == oracle


@given(st.integers(2, 4), st.integers(0, 20), st.integers(1, 12))
@settings(max_examples=6, deadline=None)
def test_transient_faults_match_oracle(shards, seed, fault_seed):
    oracle = _run(PESSIMISTIC, 1, seed, 16, fault_seed=fault_seed)
    assert (
        _run(PESSIMISTIC, shards, seed, 16, fault_seed=fault_seed) == oracle
    )


def test_crash_recovery_matches_oracle_and_uncrashed_run(tmp_path):
    # CrashPlan.random(1) fires at this scale (probed); the recovered
    # sharded run must equal both the crashed 1-shard oracle and the
    # uncrashed base run.
    base = _run(PESSIMISTIC, 1, 9, 20)
    oracle = _run(PESSIMISTIC, 1, 9, 20, crash_seed=1, tmp_path=tmp_path)
    sharded = _run(PESSIMISTIC, 4, 9, 20, crash_seed=1, tmp_path=tmp_path)
    assert oracle == base
    assert sharded == base
