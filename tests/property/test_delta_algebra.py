"""Algebraic laws of signed-multiset deltas (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.relational.delta import Delta
from repro.relational.schema import RelationSchema
from repro.relational.table import Table

SCHEMA = RelationSchema.of("R", ["a", "b"])

rows = st.tuples(
    st.sampled_from(["x", "y", "z", "w"]),
    st.sampled_from(["1", "2", "3"]),
)
entries = st.lists(
    st.tuples(rows, st.integers(min_value=-3, max_value=3)), max_size=12
)


def delta_of(items) -> Delta:
    delta = Delta(SCHEMA)
    for row, count in items:
        delta.add(row, count)
    return delta


@given(entries)
def test_negation_is_inverse(items):
    delta = delta_of(items)
    merged = delta.copy()
    merged.merge(delta.negated())
    assert merged.is_empty()


@given(entries, entries)
def test_merge_commutes(left_items, right_items):
    ab = delta_of(left_items)
    ab.merge(delta_of(right_items))
    ba = delta_of(right_items)
    ba.merge(delta_of(left_items))
    assert ab == ba


@given(entries, entries, entries)
def test_merge_associates(a_items, b_items, c_items):
    left = delta_of(a_items)
    bc = delta_of(b_items)
    bc.merge(delta_of(c_items))
    left.merge(bc)

    right = delta_of(a_items)
    right.merge(delta_of(b_items))
    right.merge(delta_of(c_items))
    assert left == right


@given(entries)
def test_split_recombines(items):
    delta = delta_of(items)
    recombined = delta.insertions
    recombined.merge(delta.deletions.negated())
    assert recombined == delta


@given(entries)
def test_net_size_is_sum_of_parts(items):
    delta = delta_of(items)
    assert delta.net_size() == (
        delta.insertions.net_size() + delta.deletions.net_size()
    )


@given(entries, st.integers(min_value=-3, max_value=3))
def test_scaling_distributes(items, factor):
    delta = delta_of(items)
    scaled = delta.scaled(factor)
    expected = Delta(SCHEMA)
    for _ in range(abs(factor)):
        expected.merge(delta if factor > 0 else delta.negated())
    assert scaled == expected


@given(entries)
def test_table_apply_delta_roundtrip(items):
    """Applying delta then its negation restores the table (when legal)."""
    delta = delta_of(items)
    base = Table(SCHEMA)
    # Seed with enough copies that deletions are always legal.
    for row in [("x", "1"), ("y", "2"), ("z", "3"), ("w", "1"),
                ("x", "2"), ("y", "1"), ("z", "2"), ("w", "3"),
                ("x", "3"), ("y", "3"), ("z", "1"), ("w", "2")]:
        base.insert(row, 40)  # enough that any generated delete is legal
    snapshot = base.copy()
    base.apply_delta(delta)
    base.apply_delta(delta.negated())
    assert base == snapshot
