"""Router soundness/completeness: sharded delivery loses nothing.

For any assignment of views to shards and any committed update stream,
the footprint router must deliver each message to *every* shard whose
views reference a touched relation and to *no* other shard.  Two
properties follow, checked on randomized registrations and streams:

* completeness — the union over shards of delivered messages equals the
  subset of the stream that touches any registered relation (with one
  registered view per relation, that is the whole stream); and
* soundness — a shard never receives a message outside its footprint
  (modulo footprints grown by delivered renames, which is the monotone
  rename-following rule, itself checked here).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import ShardRouter, assign_views
from repro.experiments.testbed import subview_query
from repro.sources.messages import DataUpdate, RenameRelation, UpdateMessage
from repro.views.definition import ViewDefinition

#: the testbed's (source, relation) catalogue: R1..R3 on src1,
#: R4..R5 on src2, R6 on src3 — mirrors source_of_relation
CATALOGUE = tuple(
    ("src1" if index < 3 else "src2" if index < 5 else "src3", f"R{index + 1}")
    for index in range(6)
)

spans = st.tuples(st.integers(0, 4), st.integers(2, 3)).map(
    lambda pair: (pair[0], min(pair[0] + pair[1], 6))
)
view_sets = st.lists(spans, min_size=1, max_size=5, unique=True)
shard_counts = st.integers(1, 4)
streams = st.lists(
    st.integers(0, len(CATALOGUE) - 1), min_size=1, max_size=40
)


def _register(view_spans, shards):
    views = [
        ViewDefinition(f"V{index + 1}", subview_query(first, last))
        for index, (first, last) in enumerate(view_spans)
    ]
    router = ShardRouter()
    buckets = assign_views(views, shards)
    for shard_id, bucket in enumerate(buckets):
        for view in bucket:
            router.register_view(shard_id, view)
    return router, buckets


def _stream(indices):
    return [
        UpdateMessage(source, seqno, float(seqno), DataUpdate(relation, None))
        for seqno, (source, relation) in enumerate(
            CATALOGUE[index] for index in indices
        )
    ]


@given(view_sets, shard_counts, streams)
@settings(max_examples=60, deadline=None)
def test_union_of_deliveries_covers_referenced_stream(
    view_spans, shards, indices
):
    router, buckets = _register(view_spans, shards)
    referenced = {
        (ref.source, ref.relation)
        for bucket in buckets
        for view in bucket
        for ref in view.query.relations
    }
    stream = _stream(indices)
    delivered = set()
    for message in stream:
        for shard_id in range(len(buckets)):
            if router.accepts(shard_id, message):
                delivered.add((message.source, message.seqno))
    expected = {
        (message.source, message.seqno)
        for message in stream
        if any(
            (message.source, relation) in referenced
            for relation in message.payload.touched_relations()
        )
    }
    assert delivered == expected


@given(view_sets, shard_counts, streams)
@settings(max_examples=60, deadline=None)
def test_no_shard_receives_out_of_footprint_messages(
    view_spans, shards, indices
):
    router, buckets = _register(view_spans, shards)
    for message in _stream(indices):
        for shard_id in range(len(buckets)):
            before = router.footprint(shard_id)
            accepted = router.accepts(shard_id, message)
            touched = {
                (message.source, relation)
                for relation in message.payload.touched_relations()
            }
            assert accepted == bool(touched & before)


@given(view_sets, shard_counts, st.integers(0, len(CATALOGUE) - 1))
@settings(max_examples=40, deadline=None)
def test_rename_following_keeps_new_name_flowing(view_spans, shards, index):
    router, buckets = _register(view_spans, shards)
    source, relation = CATALOGUE[index]
    rename = UpdateMessage(
        source, 0, 0.5, RenameRelation(relation, relation + "x")
    )
    for shard_id in range(len(buckets)):
        knew_old = (source, relation) in router.footprint(shard_id)
        accepted = router.accepts(shard_id, rename)
        assert accepted == knew_old
        follow_up = UpdateMessage(
            source, 1, 1.0, DataUpdate(relation + "x", None)
        )
        assert router.accepts(shard_id, follow_up) == knew_old
