"""Adaptive group maintenance is observationally invisible (hypothesis).

Merging a safe run of UMQ units into one voluntary batch, and
coalescing same-relation deltas inside it, must not change what the
view converges to or which updates get committed: for any workload —
DU-only or conflicting, serial or parallel, faulted or not, snapshot
cache on or off — the final view extent and the committed
(source, seqno) set with batching ON must be identical to the
batching-OFF run.  Only the round/cost metrics may differ.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.maintenance.grouping import BatchPolicy
from repro.views.consistency import check_convergence

strategies = st.sampled_from([PESSIMISTIC, OPTIMISTIC])

#: keys drawn from a narrow domain so coalesced deltas actually
#: overlap (insert/delete pairs cancel inside a batch)
HOT_KEY_DOMAIN = 8


def _run(
    strategy,
    batching,
    seed,
    du_count,
    sc_count,
    workers=None,
    fault_seed=None,
    snapshot_cache=False,
):
    testbed = build_testbed(
        strategy,
        tuples_per_relation=30,
        parallel_workers=workers,
        snapshot_cache=snapshot_cache,
        batch_policy=BatchPolicy(max_batch_size=8) if batching else None,
    )
    if fault_seed is not None:
        plan = FaultPlan.random(
            fault_seed,
            sources=list(testbed.engine.sources),
            horizon=2.0,
            max_crashes=1,
            crash_length=(0.1, 0.5),
        )
        testbed.engine.install_faults(FaultInjector(plan))
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count,
            start=0.0,
            interval=0.01,
            seed=seed,
            key_domain=HOT_KEY_DOMAIN,
        )
    )
    if sc_count:
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                sc_count, start=0.05, interval=0.07, seed=seed + 1
            )
        )
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    processed = frozenset(testbed.scheduler.stats.processed_messages)
    return testbed, extent, processed


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=1, max_value=20),
    sc_count=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_batching_matches_unbatched_serial(
    strategy, seed, du_count, sc_count
):
    off, extent_off, processed_off = _run(
        strategy, False, seed, du_count, sc_count
    )
    on, extent_on, processed_on = _run(
        strategy, True, seed, du_count, sc_count
    )
    assert extent_on == extent_off
    assert processed_on == processed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()
    # Batching can only remove maintenance rounds, never add them.
    assert (
        on.metrics.maintenance_rounds <= off.metrics.maintenance_rounds
    )
    assert on.metrics.grouped_messages >= on.metrics.batches_formed


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=1, max_value=8),
    du_count=st.integers(min_value=1, max_value=15),
    sc_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=15, deadline=None)
def test_batching_matches_unbatched_parallel(
    strategy, seed, workers, du_count, sc_count
):
    off, extent_off, processed_off = _run(
        strategy, False, seed, du_count, sc_count, workers
    )
    on, extent_on, processed_on = _run(
        strategy, True, seed, du_count, sc_count, workers
    )
    assert on.manager.umq.is_empty()
    assert extent_on == extent_off
    assert processed_on == processed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=2, max_value=6),
    du_count=st.integers(min_value=1, max_value=12),
    sc_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=10, deadline=None)
def test_batching_matches_unbatched_under_faults(
    strategy, seed, workers, du_count, sc_count
):
    """Same equivalence with a PR 1 fault plan injected in both arms
    (quarantine deferral suspends grouping but must not break it)."""
    fault_seed = seed + 77
    off, extent_off, processed_off = _run(
        strategy, False, seed, du_count, sc_count, workers, fault_seed
    )
    on, extent_on, processed_on = _run(
        strategy, True, seed, du_count, sc_count, workers, fault_seed
    )
    assert extent_on == extent_off
    assert processed_on == processed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=1, max_value=15),
    sc_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=10, deadline=None)
def test_batching_composes_with_snapshot_cache(
    strategy, seed, du_count, sc_count
):
    """Batching ON + cache ON still matches the all-off run: the batch
    probes through the same cache fast path as singleton units."""
    off, extent_off, processed_off = _run(
        strategy, False, seed, du_count, sc_count
    )
    on, extent_on, processed_on = _run(
        strategy, True, seed, du_count, sc_count, snapshot_cache=True
    )
    assert extent_on == extent_off
    assert processed_on == processed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()


def test_dense_stream_actually_batches():
    """Deterministic regression: a dense DU stream forms voluntary
    batches and cuts rounds (guards against the policy silently
    degrading to no-op)."""
    on, _extent, _processed = _run(PESSIMISTIC, True, 5, 40, 0)
    assert on.metrics.batches_formed > 0
    assert on.metrics.grouped_messages > 0
    assert on.metrics.maintenance_rounds < 40
