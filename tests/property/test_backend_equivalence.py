"""In-memory vs SQLite sources: identical observable behaviour.

Whatever sequence of updates a source commits, both backends must end in
the same extent and answer the same maintenance queries identically —
the backend-independence claim behind the paper's "general strategy ...
independent of any data model".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.predicate import InPredicate, attr
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType
from repro.sources.messages import (
    AddAttribute,
    DataUpdate,
    DropAttribute,
    RenameAttribute,
    RenameRelation,
)
from repro.sources.source import DataSource
from repro.sources.sqlite_source import SqliteDataSource

SCHEMA = RelationSchema.of(
    "R",
    [("k", AttributeType.INT), ("v", AttributeType.STRING)],
)

rows = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.sampled_from(["a", "b", "c"]),
)


@st.composite
def update_scripts(draw):
    """A list of update operations expressed backend-independently."""
    script = []
    live_rows: list = []
    attributes = ["k", "v"]
    added = 0
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        kind = draw(
            st.sampled_from(
                ["insert", "delete", "rename_attr", "add_attr"]
            )
        )
        if kind == "insert":
            row = draw(rows)
            script.append(("insert", row))
            live_rows.append(row)
        elif kind == "delete" and live_rows:
            index = draw(
                st.integers(min_value=0, max_value=len(live_rows) - 1)
            )
            script.append(("delete", live_rows.pop(index)))
        elif kind == "rename_attr":
            old = draw(st.sampled_from(attributes))
            new = f"{old}x"
            if new in attributes:
                continue
            attributes[attributes.index(old)] = new
            script.append(("rename_attr", (old, new)))
        elif kind == "add_attr":
            added += 1
            name = f"extra{added}"
            attributes.append(name)
            script.append(("add_attr", name))
    return script


def replay(source, script):
    """Apply a script, tracking the evolving schema for row widths."""
    for action, payload in script:
        schema = source.schema_of("R")
        if action == "insert":
            row = payload + (None,) * (schema.arity - 2)
            source.commit(DataUpdate.insert(schema, [row]))
        elif action == "delete":
            row = payload + (None,) * (schema.arity - 2)
            source.commit(DataUpdate.delete(schema, [row]))
        elif action == "rename_attr":
            old, new = payload
            source.commit(RenameAttribute("R", old, new))
        elif action == "add_attr":
            source.commit(
                AddAttribute("R", Attribute(payload, AttributeType.STRING))
            )


@given(update_scripts())
@settings(max_examples=50, deadline=None)
def test_extents_identical(script):
    memory = DataSource("s")
    memory.create_relation(SCHEMA, [(1, "a"), (2, "b")])
    sqlite = SqliteDataSource("s")
    sqlite.create_relation(SCHEMA, [(1, "a"), (2, "b")])

    replay(memory, script)
    replay(sqlite, script)

    assert memory.schema_of("R").attribute_names == (
        sqlite.schema_of("R").attribute_names
    )
    assert memory.catalog.table("R") == sqlite.catalog.table("R")


@given(update_scripts(), st.sets(st.integers(min_value=0, max_value=5)))
@settings(max_examples=50, deadline=None)
def test_probe_answers_identical(script, probe_values):
    memory = DataSource("s")
    memory.create_relation(SCHEMA, [(1, "a"), (2, "b"), (3, "c")])
    sqlite = SqliteDataSource("s")
    sqlite.create_relation(SCHEMA, [(1, "a"), (2, "b"), (3, "c")])
    replay(memory, script)
    replay(sqlite, script)

    schema = memory.schema_of("R")
    key = schema.attribute_names[0]
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=tuple(
            attr("R", name) for name in schema.attribute_names
        ),
        selection=InPredicate(attr("R", key), frozenset(probe_values)),
    )
    assert memory.execute(query) == sqlite.execute(query)


def test_rename_relation_equivalence():
    memory = DataSource("s")
    memory.create_relation(SCHEMA, [(1, "a")])
    sqlite = SqliteDataSource("s")
    sqlite.create_relation(SCHEMA, [(1, "a")])
    for source in (memory, sqlite):
        source.commit(RenameRelation("R", "R2"))
        source.commit(DropAttribute("R2", "v"))
    assert memory.catalog.table("R2") == sqlite.catalog.table("R2")
    assert memory.schema_of("R2").attribute_names == ("k",)
    assert sqlite.schema_of("R2").attribute_names == ("k",)
