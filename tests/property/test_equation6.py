"""Equation 6 (telescoping delta) equals the recompute diff (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maintenance.va import telescoping_delta
from repro.relational.executor import execute
from repro.relational.predicate import attr
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

R = RelationSchema.of("R", [("k", AttributeType.INT), "a"])
T = RelationSchema.of("T", [("k", AttributeType.INT), "x"])
U = RelationSchema.of("U", [("k", AttributeType.INT), "y"])

small_int = st.integers(min_value=0, max_value=3)
word = st.sampled_from(["p", "q"])
rows = st.lists(st.tuples(small_int, word), max_size=6)


def three_way() -> SPJQuery:
    return SPJQuery(
        relations=(
            RelationRef("s", "R", "R"),
            RelationRef("s", "T", "T"),
            RelationRef("s", "U", "U"),
        ),
        projection=(attr("R", "a"), attr("T", "x"), attr("U", "y")),
        joins=(
            JoinCondition(attr("R", "k"), attr("T", "k")),
            JoinCondition(attr("T", "k"), attr("U", "k")),
        ),
    )


@given(rows, rows, rows, rows, rows, rows)
@settings(max_examples=60, deadline=None)
def test_equation6_equals_recompute_diff(r0, t0, u0, r1, t1, u1):
    query = three_way()
    old_tables = {
        "R": Table(R, r0),
        "T": Table(T, t0),
        "U": Table(U, u0),
    }
    new_tables = {
        "R": Table(R, r1),
        "T": Table(T, t1),
        "U": Table(U, u1),
    }
    delta = telescoping_delta(query, old_tables, new_tables)

    expected = execute(query, new_tables).as_delta()
    expected.merge(execute(query, old_tables).as_delta().negated())

    if delta is None:
        assert expected.is_empty()
    else:
        assert delta == expected


@given(rows, rows, rows)
@settings(max_examples=30, deadline=None)
def test_equation6_applies_cleanly_to_old_extent(r0, t0, r1):
    """V_old + ΔV = V_new as actual table mutation."""
    query = SPJQuery(
        relations=(
            RelationRef("s", "R", "R"),
            RelationRef("s", "T", "T"),
        ),
        projection=(attr("R", "a"), attr("T", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
    )
    old_tables = {"R": Table(R, r0), "T": Table(T, t0)}
    new_tables = {"R": Table(R, r1), "T": old_tables["T"]}
    extent = execute(query, old_tables)
    delta = telescoping_delta(query, old_tables, new_tables)
    if delta is not None:
        extent.apply_delta(delta)
    assert extent == execute(query, new_tables)
