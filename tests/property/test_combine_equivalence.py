"""Combining schema changes preserves semantics (hypothesis).

Section 5's preprocessing must be a pure optimization: applying the
*combined* change list to a source replica must land in exactly the
same catalog state as applying the original sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maintenance.batch import combine_schema_changes
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType
from repro.sources.source import DataSource

BASE = RelationSchema.of(
    "R", [("k", AttributeType.INT), "a", "b", "c"]
)
OTHER = RelationSchema.of("T", [("k", AttributeType.INT), "x"])


@st.composite
def change_sequences(draw):
    """Random applicable sequences of rename/drop/add changes.

    Applicability is tracked by simulating names as we draw, so every
    generated sequence can be committed to a real source.
    """
    from repro.sources.messages import (
        AddAttribute,
        DropAttribute,
        DropRelation,
        RenameAttribute,
        RenameRelation,
    )

    relations = {"R": ["k", "a", "b", "c"], "T": ["k", "x"]}
    sequence = []
    counter = 0
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        if not relations:
            break
        name = draw(st.sampled_from(sorted(relations)))
        attributes = relations[name]
        kind = draw(
            st.sampled_from(
                ["rename_rel", "rename_attr", "drop_attr", "add_attr",
                 "drop_rel"]
            )
        )
        counter += 1
        if kind == "rename_rel":
            new = f"{name.partition('__')[0]}__n{counter}"
            sequence.append(RenameRelation(name, new))
            relations[new] = relations.pop(name)
        elif kind == "rename_attr":
            old = draw(st.sampled_from(attributes))
            new = f"{old.partition('__')[0]}__n{counter}"
            sequence.append(RenameAttribute(name, old, new))
            attributes[attributes.index(old)] = new
        elif kind == "drop_attr" and len(attributes) > 1:
            target = draw(st.sampled_from(attributes))
            sequence.append(DropAttribute(name, target))
            attributes.remove(target)
        elif kind == "add_attr":
            new = f"extra__n{counter}"
            sequence.append(
                AddAttribute(name, Attribute(new, AttributeType.STRING))
            )
            attributes.append(new)
        elif kind == "drop_rel" and len(relations) > 1:
            sequence.append(DropRelation(name))
            del relations[name]
    return sequence


def fresh_source() -> DataSource:
    source = DataSource("s")
    source.create_relation(BASE, [(1, "p", "q", "r"), (2, "s", "t", "u")])
    source.create_relation(OTHER, [(9, "z")])
    return source


def catalog_state(source: DataSource) -> dict:
    return {
        name: (
            source.catalog.schema(name).attribute_names,
            sorted(source.catalog.table(name).rows()),
        )
        for name in sorted(source.catalog.relation_names)
    }


@given(change_sequences())
@settings(max_examples=80, deadline=None)
def test_combined_equals_sequential(sequence):
    sequential = fresh_source()
    for change in sequence:
        sequential.commit(change)

    combined_source = fresh_source()
    combined = combine_schema_changes(
        [("s", change) for change in sequence]
    )
    for _source, change in combined:
        combined_source.commit(change)

    assert catalog_state(sequential) == catalog_state(combined_source)


@given(change_sequences())
@settings(max_examples=60, deadline=None)
def test_combined_is_no_longer_than_original(sequence):
    combined = combine_schema_changes([("s", c) for c in sequence])
    assert len(combined) <= len(sequence)
