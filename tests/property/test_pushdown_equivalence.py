"""Executor pushdown vs residual-only evaluation (hypothesis).

The executor splits the selection into per-alias conjuncts pushed down
to the scans (``_single_alias_conjuncts``) and lets ``_scan`` answer
small IN-lists through the table's hash index (``_pick_probe``).  Both
are pure optimizations: evaluating every conjunct as a post-join
residual filter over full scans must produce the identical counted
result.  These tests run the same query through both paths — pushdown
enabled (the real executor) and forcibly disabled — and require
bag-equality, so a conjunct lost or double-applied during the split, or
a probe that misses rows the scan would keep, shows up immediately.
"""

from collections import Counter
from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.executor import _pick_probe, execute
from repro.relational.predicate import (
    TRUE,
    Comparison,
    Conjunction,
    InPredicate,
    Predicate,
    attr,
    conjunction,
)
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

R = RelationSchema.of("R", [("k", AttributeType.INT), "a"])
T = RelationSchema.of("T", [("k", AttributeType.INT), "x"])

small_int = st.integers(min_value=0, max_value=5)
word = st.sampled_from(["p", "q", "r"])

r_rows = st.lists(st.tuples(small_int, word), max_size=10)
t_rows = st.lists(st.tuples(small_int, word), max_size=10)
in_values = st.frozensets(small_int, min_size=1, max_size=3)


def _no_split(selection: Predicate):
    """``_single_alias_conjuncts`` replacement: push nothing down."""
    if isinstance(selection, Conjunction):
        return {}, list(selection.children)
    if selection is TRUE:
        return {}, []
    return {}, [selection]


def _without_pushdown(query: SPJQuery, tables: dict[str, Table]) -> Counter:
    """Evaluate with selection pushdown and index probing disabled."""
    with mock.patch(
        "repro.relational.executor._single_alias_conjuncts", _no_split
    ), mock.patch(
        "repro.relational.executor._pick_probe",
        lambda table, alias, predicates: None,
    ):
        return as_counter(execute(query, tables))


def as_counter(table: Table) -> Counter:
    counter: Counter = Counter()
    for row, count in table.items():
        counter[row] += count
    return counter


@given(r_rows, t_rows, in_values, small_int)
@settings(max_examples=80, deadline=None)
def test_join_selection_pushdown_matches_residual(
    r_data, t_data, values, threshold
):
    tables = {"R": Table(R, r_data), "T": Table(T, t_data)}
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"), RelationRef("s", "T", "T")),
        projection=(attr("R", "a"), attr("T", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
        selection=conjunction(
            [
                InPredicate(attr("R", "k"), values),
                Comparison(attr("T", "k"), ">=", threshold),
            ]
        ),
    )
    assert as_counter(execute(query, tables)) == _without_pushdown(
        query, tables
    )


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=40), word),
        min_size=12,
        max_size=40,
    ),
    st.frozensets(st.integers(min_value=0, max_value=40), min_size=1,
                  max_size=2),
)
@settings(max_examples=80, deadline=None)
def test_in_list_probe_matches_full_scan(rows, values):
    """Wide key domain + tiny IN-list: the regime where ``_pick_probe``
    elects the indexed probe (this is exactly the maintenance-query
    shape the snapshot cache memoizes)."""
    tables = {"R": Table(R, rows)}
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "k"), attr("R", "a")),
        selection=InPredicate(attr("R", "k"), values),
    )
    assert as_counter(execute(query, tables)) == _without_pushdown(
        query, tables
    )


def test_pick_probe_fires_only_when_selective():
    table = Table(R, [(key, "p") for key in range(40)])
    small = [InPredicate(attr("R", "k"), frozenset({1, 2}))]
    assert _pick_probe(table, "R", small) == ("k", frozenset({1, 2}))
    # An IN-list covering a quarter of the table is not worth probing.
    wide = [InPredicate(attr("R", "k"), frozenset(range(10)))]
    assert _pick_probe(table, "R", wide) is None
    # Qualified to a different alias: unusable for this scan.
    other = [InPredicate(attr("T", "k"), frozenset({1}))]
    assert _pick_probe(table, "R", other) is None


def test_pick_probe_prefers_smallest_in_list():
    table = Table(R, [(key, "p") for key in range(40)])
    predicates = [
        InPredicate(attr("R", "k"), frozenset({1, 2, 3})),
        InPredicate(attr("R", "k"), frozenset({7})),
    ]
    assert _pick_probe(table, "R", predicates) == ("k", frozenset({7}))
