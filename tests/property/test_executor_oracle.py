"""Executor vs a brute-force nested-loop oracle (hypothesis)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.executor import execute
from repro.relational.predicate import Comparison, attr, conjunction
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

R = RelationSchema.of("R", [("k", AttributeType.INT), "a"])
T = RelationSchema.of("T", [("k", AttributeType.INT), "x"])
U = RelationSchema.of("U", [("j", AttributeType.INT), "y"])

small_int = st.integers(min_value=0, max_value=3)
word = st.sampled_from(["p", "q", "r"])

r_rows = st.lists(st.tuples(small_int, word), max_size=8)
t_rows = st.lists(st.tuples(small_int, word), max_size=8)
u_rows = st.lists(st.tuples(small_int, word), max_size=8)


def brute_force(query: SPJQuery, tables: dict[str, Table]) -> Counter:
    """Nested-loop reference evaluation with bag semantics."""
    aliases = list(query.aliases)
    columns: list = []
    for alias in aliases:
        for attribute in tables[alias].schema:
            columns.append((alias, attribute.name))

    def rows_of(alias):
        return list(tables[alias])

    def all_combos(index):
        if index == len(aliases):
            yield ()
            return
        for row in rows_of(aliases[index]):
            for rest in all_combos(index + 1):
                yield (row,) + rest

    def binding_for(combo):
        flat = [value for row in combo for value in row]

        def binding(ref):
            matches = [
                i
                for i, (alias, name) in enumerate(columns)
                if name == ref.name
                and (ref.relation is None or ref.relation == alias)
            ]
            return flat[matches[0]]

        return binding

    result: Counter = Counter()
    for combo in all_combos(0):
        binding = binding_for(combo)
        if not all(
            binding(join.left) == binding(join.right)
            for join in query.joins
        ):
            continue
        if not query.selection.evaluate(binding):
            continue
        projected = tuple(binding(ref) for ref in query.projection)
        result[projected] += 1
    return result


def as_counter(table: Table) -> Counter:
    counter: Counter = Counter()
    for row, count in table.items():
        counter[row] += count
    return counter


@given(r_rows, t_rows)
@settings(max_examples=60, deadline=None)
def test_two_way_join_matches_oracle(r_data, t_data):
    tables = {"R": Table(R, r_data), "T": Table(T, t_data)}
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"), RelationRef("s", "T", "T")),
        projection=(attr("R", "a"), attr("T", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
    )
    assert as_counter(execute(query, tables)) == brute_force(query, tables)


@given(r_rows, t_rows, st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_join_with_selection_matches_oracle(r_data, t_data, threshold):
    tables = {"R": Table(R, r_data), "T": Table(T, t_data)}
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"), RelationRef("s", "T", "T")),
        projection=(attr("R", "k"), attr("T", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
        selection=conjunction(
            [Comparison(attr("R", "k"), ">=", threshold)]
        ),
    )
    assert as_counter(execute(query, tables)) == brute_force(query, tables)


@given(r_rows, t_rows, u_rows)
@settings(max_examples=40, deadline=None)
def test_three_way_chain_matches_oracle(r_data, t_data, u_data):
    tables = {
        "R": Table(R, r_data),
        "T": Table(T, t_data),
        "U": Table(U, u_data),
    }
    query = SPJQuery(
        relations=(
            RelationRef("s", "R", "R"),
            RelationRef("s", "T", "T"),
            RelationRef("s", "U", "U"),
        ),
        projection=(attr("R", "a"), attr("U", "y")),
        joins=(
            JoinCondition(attr("R", "k"), attr("T", "k")),
            JoinCondition(attr("T", "k"), attr("U", "j")),
        ),
    )
    assert as_counter(execute(query, tables)) == brute_force(query, tables)


@given(r_rows, u_rows)
@settings(max_examples=40, deadline=None)
def test_cartesian_product_matches_oracle(r_data, u_data):
    tables = {"R": Table(R, r_data), "U": Table(U, u_data)}
    query = SPJQuery(
        relations=(
            RelationRef("s", "R", "R"),
            RelationRef("s", "U", "U"),
        ),
        projection=(attr("R", "a"), attr("U", "y")),
    )
    assert as_counter(execute(query, tables)) == brute_force(query, tables)
