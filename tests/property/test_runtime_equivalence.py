"""The process-parallel runtime is bit-identical to the inline oracle.

Shard worlds are interleaving-invariant (each owns its whole world; the
cross-shard SC barrier is a scheduling preference, not a correctness
dependency), so executing them across OS worker processes with the
BSP coordinator of :mod:`repro.core.runtime` must reproduce the inline
:class:`~repro.core.sharding.ShardedWarehouse` results byte for byte:
per-view extents, the union of committed ``(source, seqno)`` sets, and
every shard's final virtual clock — across strategies x fault plans x
crash plans x parallel workers x process counts.

A dead worker *process* (as opposed to a crashed scheduler, which
recovers from its journal inside the worker) must surface as a clean
``RuntimeError`` in the parent, never a hang.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import (
    ProcessShardRuntime,
    ShardStatus,
    WorkerDied,
    plan_round,
)
from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import (
    build_sharded_testbed,
    sharded_world_specs,
)
from repro.faults.plan import FaultPlan
from repro.recovery import CrashPlan

strategies = st.sampled_from([PESSIMISTIC, OPTIMISTIC])


def _run(
    strategy,
    processes,
    seed,
    du_count,
    sc_count=0,
    workers=None,
    fault_seed=None,
    crash_seed=None,
    tmp_path=None,
):
    kwargs = {}
    if fault_seed is not None:
        kwargs["fault_plan"] = FaultPlan.random(
            fault_seed,
            sources=("src1", "src2", "src3"),
            horizon=2.0,
            max_crashes=1,
            crash_length=(0.1, 0.4),
        )
    if crash_seed is not None:
        kwargs["journal"] = True
        kwargs["crash_plan"] = CrashPlan.random(crash_seed)
        kwargs["journal_dir"] = tmp_path / f"procs-{processes}"
    testbed = build_sharded_testbed(
        strategy,
        shards=4,
        tuples_per_relation=30,
        parallel_workers=workers,
        shard_processes=processes,
        **kwargs,
    )
    testbed.schedule_du_workload(
        du_count, start=0.05, interval=0.05, seed=seed
    )
    if sc_count:
        testbed.schedule_sc_workload(
            sc_count, start=0.6, interval=4.0, seed=seed + 4
        )
    testbed.run()
    assert testbed.check_consistency()
    return (
        testbed.extent_rows(),
        testbed.committed_updates(),
        testbed.shard_clocks(),
    )


@given(strategies, st.sampled_from([1, 2, 4]), st.integers(0, 40))
@settings(max_examples=8, deadline=None)
def test_du_streams_match_inline(strategy, processes, seed):
    oracle = _run(strategy, 0, seed, 12)
    assert _run(strategy, processes, seed, 12) == oracle


@given(strategies, st.sampled_from([2, 4]), st.integers(0, 20))
@settings(max_examples=4, deadline=None)
def test_sc_barrier_protocol_matches_inline(strategy, processes, seed):
    oracle = _run(strategy, 0, seed, 12, sc_count=2)
    assert _run(strategy, processes, seed, 12, sc_count=2) == oracle


@given(st.sampled_from([2, 4]), st.integers(0, 20), st.sampled_from([2, 3]))
@settings(max_examples=4, deadline=None)
def test_parallel_workers_inside_workers_match_inline(
    processes, seed, workers
):
    oracle = _run(PESSIMISTIC, 0, seed, 12, workers=workers)
    assert _run(PESSIMISTIC, processes, seed, 12, workers=workers) == oracle


@given(st.sampled_from([2, 4]), st.integers(0, 20), st.integers(1, 12))
@settings(max_examples=4, deadline=None)
def test_transient_faults_match_inline(processes, seed, fault_seed):
    oracle = _run(PESSIMISTIC, 0, seed, 12, fault_seed=fault_seed)
    assert (
        _run(PESSIMISTIC, processes, seed, 12, fault_seed=fault_seed)
        == oracle
    )


def test_crash_recovery_inside_workers_matches_inline(tmp_path):
    # CrashPlan.random(1) fires at this scale; the scheduler crash
    # recovers from the shard's own journal INSIDE the worker process,
    # and the recovered state shipped home must equal both the crashed
    # inline run and the uncrashed base run.
    base = _run(PESSIMISTIC, 0, 9, 16)
    oracle = _run(PESSIMISTIC, 0, 9, 16, crash_seed=1, tmp_path=tmp_path)
    processed = _run(
        PESSIMISTIC, 2, 9, 16, crash_seed=1, tmp_path=tmp_path
    )
    # Inline-vs-process identity is total: extents, committed sets AND
    # per-shard clocks (recovery cost charged identically).
    assert processed == oracle
    # Against the UNCRASHED base only extents + committed sets match:
    # recovery legitimately charges extra virtual time, so clocks move.
    assert oracle[:2] == base[:2]


def test_read_front_end_matches_inline():
    from repro.frontend.reads import (
        READ_COMMITTED_VERSION,
        READ_LATEST,
        ReadWorkload,
    )

    def front_end(processes):
        testbed = build_sharded_testbed(
            PESSIMISTIC,
            shards=4,
            tuples_per_relation=40,
            shard_processes=processes,
        )
        testbed.schedule_du_workload(10, start=0.05, interval=0.05, seed=7)
        testbed.schedule_sc_workload(1, start=1.0, interval=9.0, seed=11)
        testbed.run()
        return testbed.read_front_end()

    inline, processed = front_end(0), front_end(2)
    workload = ReadWorkload(count=2000)
    for level in (READ_LATEST, READ_COMMITTED_VERSION):
        assert inline.serve(workload, level) == processed.serve(
            workload, level
        )


# ----------------------------------------------------------------------
# worker-process death
# ----------------------------------------------------------------------


def _specs():
    return sharded_world_specs(
        PESSIMISTIC, shards=4, tuples_per_relation=24
    )


@pytest.mark.parametrize("kill_round", [0, 2])
def test_worker_death_raises_clean_runtime_error(kill_round):
    # Kill shard 1's worker at the given coordinator round (hard
    # os._exit inside the worker): the coordinator must detect the
    # closed pipe and raise — a WorkerDied (a RuntimeError) naming the
    # worker — not hang.
    from repro.core.runtime import WorkloadSpec

    runtime = ProcessShardRuntime(
        _specs(),
        processes=2,
        reply_timeout=60.0,
        kill_shard_after=(1, kill_round),
    )
    runtime.add_workload_spec(
        WorkloadSpec(
            "du",
            {
                "tuples_per_relation": 24,
                "count": 8,
                "start": 0.05,
                "interval": 0.05,
                "seed": 7,
            },
        )
    )
    with pytest.raises(RuntimeError, match="died"):
        runtime.run()
    # The fleet is torn down; no worker is left running.
    assert all(not w.process.is_alive() for w in runtime._workers)


# ----------------------------------------------------------------------
# coordinator policy unit checks (no processes involved)
# ----------------------------------------------------------------------


def _status(shard_id, **overrides):
    defaults = dict(
        shard_id=shard_id,
        quiescent=False,
        clock_now=1.0,
        barrier_at=None,
        min_pending_commit=None,
        pool_busy=False,
        has_next_event=True,
    )
    defaults.update(overrides)
    return ShardStatus(**defaults)


def test_plan_round_steps_all_runnable_by_clock_order():
    statuses = {
        0: _status(0, clock_now=3.0),
        1: _status(1, clock_now=1.0),
        2: _status(2, quiescent=True),
    }
    steps, holds, release = plan_round(statuses)
    assert steps == [1, 0]  # (clock, shard_id) order, quiescent skipped
    assert holds == [] and release is None


def test_plan_round_holds_sc_head_behind_blocking_peer():
    statuses = {
        0: _status(0, barrier_at=2.0),
        1: _status(1, min_pending_commit=1.5),  # holds earlier work
    }
    steps, holds, release = plan_round(statuses)
    assert holds == [0] and steps == [1] and release is None


def test_plan_round_releases_earliest_sc_on_circular_wait():
    statuses = {
        0: _status(0, barrier_at=2.0, min_pending_commit=1.0),
        1: _status(1, barrier_at=1.8, min_pending_commit=1.1),
    }
    steps, holds, release = plan_round(statuses)
    assert release == 1  # earliest barrier wins
    assert holds == [0] and steps == []


def test_plan_round_quiescent_world_terminates():
    statuses = {0: _status(0, quiescent=True)}
    assert plan_round(statuses) == ([], [], None)


def test_worker_died_is_a_runtime_error():
    assert issubclass(WorkerDied, RuntimeError)
