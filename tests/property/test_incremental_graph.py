"""Incremental detection substrate vs. the from-scratch oracle.

:class:`~repro.core.incremental.IncrementalDependencyGraph` mirrors the
UMQ through its mutation-listener hooks.  Its one correctness contract:
after *any* interleaving of ``receive`` / ``remove_head`` /
``replace_order`` the edge set (and therefore the corrected order) is
bit-identical to a from-scratch
:func:`~repro.core.dependencies.find_dependencies` over the same
messages.  These tests drive random interleavings and check that
contract after every single mutation, plus the footprint-cache epoch
(view-version) invalidation rules.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependencies import NameResolver, find_dependencies
from repro.core.graph import DependencyGraph
from repro.core.incremental import FootprintCache, IncrementalDependencyGraph
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    RenameRelation,
    UpdateMessage,
)
from repro.views.umq import MaintenanceUnit, UpdateMessageQueue

from tests.conftest import (
    CATALOG_SCHEMA,
    ITEM_SCHEMA,
    STORE_SCHEMA,
    bookinfo_query,
)

QUERY = bookinfo_query()

#: (source, schema, a droppable attribute) for each view relation
RELATIONS = (
    ("retailer", STORE_SCHEMA, "Store"),
    ("retailer", ITEM_SCHEMA, "Price"),
    ("library", CATALOG_SCHEMA, "Review"),
)


class _Stream:
    """Builds messages with monotone per-source sequence numbers and
    tracks the current (possibly renamed) name of each relation."""

    def __init__(self) -> None:
        self._seqno: dict[str, int] = {}
        self._clock = 0.0
        self._names = {
            (source, schema.name): schema.name
            for source, schema, _attr in RELATIONS
        }
        self._rename_count = 0

    def _message(self, source: str, payload) -> UpdateMessage:
        seqno = self._seqno.get(source, 0) + 1
        self._seqno[source] = seqno
        self._clock += 1.0
        return UpdateMessage(source, seqno, self._clock, payload)

    def data_update(self, relation_index: int) -> UpdateMessage:
        source, schema, _attr = RELATIONS[relation_index]
        return self._message(source, DataUpdate.insert(schema, []))

    def drop_attribute(self, relation_index: int) -> UpdateMessage:
        source, schema, attribute = RELATIONS[relation_index]
        return self._message(source, DropAttribute(schema.name, attribute))

    def rename_relation(self, relation_index: int) -> UpdateMessage:
        source, schema, _attr = RELATIONS[relation_index]
        key = (source, schema.name)
        self._rename_count += 1
        old = self._names[key]
        new = f"{schema.name}__v{self._rename_count}"
        self._names[key] = new
        return self._message(source, RenameRelation(old, new))


@st.composite
def op_sequences(draw):
    """A random interleaving of queue mutations.

    Ops are abstract (kind + relation + shuffle seed); the test
    interprets them against a fresh UMQ so hypothesis shrinking stays
    meaningful.
    """
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("du"), st.integers(min_value=0, max_value=2)
                ),
                st.tuples(
                    st.just("drop"), st.integers(min_value=0, max_value=2)
                ),
                st.tuples(
                    st.just("rename"), st.integers(min_value=0, max_value=2)
                ),
                st.tuples(st.just("remove_head"), st.just(0)),
                st.tuples(
                    st.just("remove_unit"),
                    st.integers(min_value=0, max_value=2**16),
                ),
                st.tuples(st.just("requeue"), st.just(0)),
                st.tuples(
                    st.just("reorder"),
                    st.integers(min_value=0, max_value=2**16),
                ),
            ),
            min_size=1,
            max_size=24,
        )
    )
    return ops


def _reordered_units(umq: UpdateMessageQueue, seed: int):
    """A shuffled permutation of the queued units, occasionally merging
    the first two (as correction does for cycles)."""
    rng = random.Random(seed)
    units = list(umq.units)
    rng.shuffle(units)
    if len(units) >= 2 and rng.random() < 0.3:
        units = [MaintenanceUnit.merged([units[0], units[1]])] + units[2:]
    return units


def _check_equivalence(
    umq: UpdateMessageQueue, incremental: IncrementalDependencyGraph
) -> None:
    messages = umq.messages()
    expected = {
        (dep.before_index, dep.after_index, dep.kind)
        for dep in find_dependencies(messages, QUERY)
    }
    got = {
        (dep.before_index, dep.after_index, dep.kind)
        for dep in incremental.dependencies()
    }
    assert got == expected
    assert incremental.node_count == len(messages)
    # The corrected schedule must also match (legal_order is
    # deterministic given the same node/edge sets).
    oracle_graph = DependencyGraph(
        len(messages), find_dependencies(messages, QUERY)
    )
    assert (
        incremental.detection().graph.legal_order()
        == oracle_graph.legal_order()
    )


@given(op_sequences())
@settings(max_examples=60, deadline=None)
def test_incremental_graph_matches_from_scratch_oracle(ops):
    """Every mutation path — including the parallel dispatcher's
    mid-queue ``remove_unit`` and the abort path's ``requeue_front`` —
    must leave the substrate bit-identical to a from-scratch rebuild."""
    umq = UpdateMessageQueue()
    incremental = IncrementalDependencyGraph(umq, lambda: (QUERY,))
    stream = _Stream()
    removed: list[MaintenanceUnit] = []
    for kind, argument in ops:
        if kind == "du":
            umq.receive(stream.data_update(argument))
        elif kind == "drop":
            umq.receive(stream.drop_attribute(argument))
        elif kind == "rename":
            umq.receive(stream.rename_relation(argument))
        elif kind == "remove_head":
            if not umq.is_empty():
                removed.append(umq.remove_head())
        elif kind == "remove_unit":
            if not umq.is_empty():
                units = umq.units
                removed.append(
                    umq.remove_unit(units[argument % len(units)])
                )
        elif kind == "requeue":
            if removed:
                umq.requeue_front(removed.pop())
        elif kind == "reorder":
            if not umq.is_empty():
                umq.replace_order(_reordered_units(umq, argument))
        _check_equivalence(umq, incremental)


@given(op_sequences())
@settings(max_examples=40, deadline=None)
def test_unit_removal_with_schema_changes_rebuilds_consistently(ops):
    """remove_head of multi-message (merged) units — the path where an
    SC-bearing unit forces the rebuild fallback."""
    umq = UpdateMessageQueue()
    incremental = IncrementalDependencyGraph(umq, lambda: (QUERY,))
    stream = _Stream()
    for kind, argument in ops:
        if kind in ("du", "drop", "rename"):
            maker = {
                "du": stream.data_update,
                "drop": stream.drop_attribute,
                "rename": stream.rename_relation,
            }[kind]
            umq.receive(maker(argument))
            continue
        if umq.is_empty():
            continue
        # Merge everything into one unit, then remove it: exercises
        # multi-message head removal (with and without schema changes).
        umq.replace_order([MaintenanceUnit.merged(list(umq.units))])
        _check_equivalence(umq, incremental)
        umq.remove_head()
        _check_equivalence(umq, incremental)
    _check_equivalence(umq, incremental)


class TestFootprintCacheEpoch:
    def test_hit_on_repeat_miss_after_epoch_bump(self):
        epoch = [0]
        cache = FootprintCache(
            lambda: (QUERY,), epoch=lambda: tuple(epoch)
        )
        stream = _Stream()
        message = stream.data_update(0)
        resolver = NameResolver([])

        first = cache.footprint(message, resolver)
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.footprint(message, resolver)
        assert (cache.hits, cache.misses) == (1, 1)
        assert second == first

        epoch[0] += 1  # a view-version bump
        third = cache.footprint(message, resolver)
        assert (cache.hits, cache.misses) == (1, 2)
        assert cache.invalidations == 1
        assert third == first  # same view query -> same footprint

    def test_substrate_recomputes_footprints_after_version_bump(self):
        epoch = [0]
        umq = UpdateMessageQueue()
        incremental = IncrementalDependencyGraph(
            umq, lambda: (QUERY,), epoch=lambda: tuple(epoch)
        )
        stream = _Stream()
        umq.receive(stream.data_update(0))
        umq.receive(stream.data_update(1))

        incremental.footprint_at(0)
        misses_before = incremental.cache.misses
        incremental.footprint_at(0)
        assert incremental.cache.misses == misses_before  # cached

        epoch[0] += 1
        incremental.footprint_at(0)
        assert incremental.cache.misses == misses_before + 1
        assert incremental.cache.invalidations >= 1

    def test_lineage_arrival_clears_cache_and_stays_correct(self):
        umq = UpdateMessageQueue()
        incremental = IncrementalDependencyGraph(umq, lambda: (QUERY,))
        stream = _Stream()
        umq.receive(stream.data_update(1))
        incremental.footprint_at(0)
        rebuilds_before = incremental.rebuilds
        umq.receive(stream.rename_relation(1))
        assert incremental.rebuilds == rebuilds_before + 1
        _check_equivalence(umq, incremental)
