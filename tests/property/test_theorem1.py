"""Theorem 1: a broken query implies an unsafe dependency.

We instrument the scheduler so that at the instant any broken query is
handled, pre-exec detection over the live UMQ (with speculative VS
footprints) must report at least one unsafe dependency — the breaking
schema change has already arrived (zero wrapper latency) and must
conflict with something ahead of it in the queue.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detection import detect
from repro.core.scheduler import DynoScheduler
from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed


class _TheoremCheckingScheduler(DynoScheduler):
    def __init__(self, manager, strategy):
        super().__init__(manager, strategy)
        self.checked_breaks = 0

    def _handle_broken_query(self, unit, broken):
        result = detect(
            self.umq.messages(),
            self.manager.view.query,
            rewritten_query=self._speculative_rewrite,
        )
        assert result.has_unsafe, (
            f"broken query at {broken.source} without any unsafe "
            f"dependency in the UMQ — Theorem 1 violated"
        )
        assert any(
            self.umq.messages()[dep.before_index].source == broken.source
            for dep in result.unsafe
        ), "no unsafe dependency originates from the breaking source"
        self.checked_breaks += 1
        super()._handle_broken_query(unit, broken)


@given(
    strategy=st.sampled_from([PESSIMISTIC, OPTIMISTIC]),
    seed=st.integers(min_value=0, max_value=5_000),
    sc_count=st.integers(min_value=1, max_value=5),
    sc_interval=st.floats(min_value=0.5, max_value=25.0),
    du_count=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=30, deadline=None)
def test_broken_query_implies_unsafe_dependency(
    strategy, seed, sc_count, sc_interval, du_count
):
    testbed = build_testbed(strategy, tuples_per_relation=30, seed=seed)
    scheduler = _TheoremCheckingScheduler(testbed.manager, strategy)
    testbed.engine.schedule_workload(
        testbed.random_du_workload(du_count, 0.0, 0.2, seed=seed)
    )
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(
            sc_count, 0.0, sc_interval, seed=seed + 1
        )
    )
    scheduler.run()
    # The assertion inside the scheduler is the theorem check; here we
    # only confirm the run finished and the check fired when breaks
    # happened.
    assert scheduler.checked_breaks == testbed.metrics.aborts
