"""The parallel executor is observationally equivalent to serial Dyno.

Theorem 2: every topological order of the dependency graph is a legal
maintenance order.  The parallel executor runs the ready antichain on N
workers, so for any workload and any worker count the final view extent
and the committed (source, seqno) set must be byte-identical to the
serial scheduler's — that is the whole correctness claim of the
executor, checked here end to end on randomized streams.

The dispatch audit is also replayed: no unit may ever have been
dispatched while an in-flight unit touched one of its (source,
relation) keys, and SC-bearing or batch units must have run solo
(the barrier rule that covers all conflict-dependency edges).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.views.consistency import check_convergence

strategies = st.sampled_from([PESSIMISTIC, OPTIMISTIC])


def _run(strategy, workers, seed, du_count, sc_count, fault_seed=None):
    testbed = build_testbed(
        strategy, tuples_per_relation=30, parallel_workers=workers
    )
    if fault_seed is not None:
        plan = FaultPlan.random(
            fault_seed,
            sources=list(testbed.engine.sources),
            horizon=2.0,
            max_crashes=1,
            crash_length=(0.1, 0.5),
        )
        testbed.engine.install_faults(FaultInjector(plan))
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count, start=0.0, interval=0.01, seed=seed
        )
    )
    if sc_count:
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                sc_count, start=0.05, interval=0.07, seed=seed + 1
            )
        )
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    processed = frozenset(testbed.scheduler.stats.processed_messages)
    return testbed, extent, processed


def _touched_keys(messages):
    return {
        (message.source, relation)
        for message in messages
        for relation in message.touched_relations()
    }


def _audit(scheduler):
    """Replay the dispatch log against the gating invariants."""
    for record in scheduler.dispatch_audit:
        unit_messages = record["unit"]
        in_flight = record["in_flight"]
        is_barrier = len(unit_messages) > 1 or any(
            not message.is_data_update for message in unit_messages
        )
        if is_barrier:
            assert not in_flight, (
                "SC/batch unit dispatched with busy workers"
            )
        keys = _touched_keys(unit_messages)
        for running in in_flight:
            assert not (keys & _touched_keys(running)), (
                "dispatched while an in-flight unit touched "
                f"{keys & _touched_keys(running)}"
            )


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=1, max_value=8),
    du_count=st.integers(min_value=1, max_value=20),
    sc_count=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_parallel_matches_serial_oracle(
    strategy, seed, workers, du_count, sc_count
):
    serial, serial_extent, serial_processed = _run(
        strategy, None, seed, du_count, sc_count
    )
    parallel, extent, processed = _run(
        strategy, workers, seed, du_count, sc_count
    )
    assert parallel.manager.umq.is_empty()
    assert extent == serial_extent
    assert processed == serial_processed
    report = check_convergence(parallel.manager)
    assert report.consistent, report.summary()
    _audit(parallel.scheduler)


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=2, max_value=8),
    du_count=st.integers(min_value=1, max_value=15),
    sc_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=15, deadline=None)
def test_parallel_matches_serial_oracle_under_faults(
    strategy, seed, workers, du_count, sc_count
):
    """Same equivalence with a PR 1 fault plan injected in both runs."""
    fault_seed = seed + 77
    serial, serial_extent, serial_processed = _run(
        strategy, None, seed, du_count, sc_count, fault_seed
    )
    parallel, extent, processed = _run(
        strategy, workers, seed, du_count, sc_count, fault_seed
    )
    assert parallel.manager.umq.is_empty()
    assert extent == serial_extent
    assert processed == serial_processed
    report = check_convergence(parallel.manager)
    assert report.consistent, report.summary()
    _audit(parallel.scheduler)
