"""The snapshot cache is observationally invisible (hypothesis).

A served cache hit must be byte-equal to the answer a zero-latency
round trip would have returned at the same instant: the entry is
stamped with the source's commit version and patched forward through
every committed gap delta before serving (SC in the gap drops it).  So
for any workload — DU-only or conflicting, serial or parallel, faulted
or not — the final view extent and the committed (source, seqno) set
with the cache ON must be identical to the cache-OFF run.  Only the
cost/round-trip metrics may differ.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.views.consistency import check_convergence

strategies = st.sampled_from([PESSIMISTIC, OPTIMISTIC])

#: keys drawn from a narrow domain so probes repeat (cache hits) while
#: the relation extents keep churning (patch work)
HOT_KEY_DOMAIN = 8


def _run(
    strategy,
    snapshot_cache,
    seed,
    du_count,
    sc_count,
    workers=None,
    fault_seed=None,
):
    testbed = build_testbed(
        strategy,
        tuples_per_relation=30,
        parallel_workers=workers,
        snapshot_cache=snapshot_cache,
    )
    if fault_seed is not None:
        plan = FaultPlan.random(
            fault_seed,
            sources=list(testbed.engine.sources),
            horizon=2.0,
            max_crashes=1,
            crash_length=(0.1, 0.5),
        )
        testbed.engine.install_faults(FaultInjector(plan))
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count,
            start=0.0,
            interval=0.01,
            seed=seed,
            key_domain=HOT_KEY_DOMAIN,
        )
    )
    if sc_count:
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                sc_count, start=0.05, interval=0.07, seed=seed + 1
            )
        )
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    processed = frozenset(testbed.scheduler.stats.processed_messages)
    return testbed, extent, processed


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    du_count=st.integers(min_value=1, max_value=20),
    sc_count=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_cache_matches_uncached_serial(strategy, seed, du_count, sc_count):
    off, extent_off, processed_off = _run(
        strategy, False, seed, du_count, sc_count
    )
    on, extent_on, processed_on = _run(
        strategy, True, seed, du_count, sc_count
    )
    assert extent_on == extent_off
    assert processed_on == processed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()
    # The cache can only remove round trips, never add them.
    assert (
        on.metrics.source_round_trips <= off.metrics.source_round_trips
    )
    assert (
        on.metrics.cache_hits == on.metrics.saved_round_trips
    )


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=1, max_value=8),
    du_count=st.integers(min_value=1, max_value=15),
    sc_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=15, deadline=None)
def test_cache_matches_uncached_parallel(
    strategy, seed, workers, du_count, sc_count
):
    off, extent_off, processed_off = _run(
        strategy, False, seed, du_count, sc_count, workers
    )
    on, extent_on, processed_on = _run(
        strategy, True, seed, du_count, sc_count, workers
    )
    assert on.manager.umq.is_empty()
    assert extent_on == extent_off
    assert processed_on == processed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()
    # Every cache serve bypassed the channel admission path; the audit
    # records the channel state it skipped past.
    for record in on.scheduler.cache_audit:
        assert record["patched_rows"] >= 0


@given(
    strategy=strategies,
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=2, max_value=6),
    du_count=st.integers(min_value=1, max_value=12),
    sc_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=10, deadline=None)
def test_cache_matches_uncached_under_faults(
    strategy, seed, workers, du_count, sc_count
):
    """Same equivalence with a PR 1 fault plan injected in both arms."""
    fault_seed = seed + 77
    off, extent_off, processed_off = _run(
        strategy, False, seed, du_count, sc_count, workers, fault_seed
    )
    on, extent_on, processed_on = _run(
        strategy, True, seed, du_count, sc_count, workers, fault_seed
    )
    assert extent_on == extent_off
    assert processed_on == processed_off
    report = check_convergence(on.manager)
    assert report.consistent, report.summary()


def test_hot_key_stream_actually_hits_and_patches():
    """Deterministic regression: the fast path fires on a hot-key DU
    stream — repeated probes hit, and churn in the gaps forces patches
    (guards against the cache silently degrading to all-miss)."""
    on, _extent, _processed = _run(PESSIMISTIC, True, 5, 40, 0)
    assert on.metrics.cache_hits > 0
    assert on.metrics.patched_answers >= 1
    assert on.metrics.saved_round_trips == on.metrics.cache_hits
    assert on.metrics.cache_invalidations_sc == 0

    with_sc, _extent, _processed = _run(PESSIMISTIC, True, 5, 40, 2)
    assert with_sc.metrics.cache_invalidations_sc >= 0  # SC path exercised
    report = check_convergence(with_sc.manager)
    assert report.consistent, report.summary()
