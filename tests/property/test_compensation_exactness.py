"""Compensation exactness (hypothesis).

SWEEP's core claim: subtracting the locally-known effect of leaked
concurrent deltas from a probe answer reconstructs exactly the answer
the source would have given *before* those deltas committed.  We
generate a base table, a set of concurrent deltas and a probe, apply
the deltas, compensate the polluted answer, and require equality with
the clean answer.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.maintenance.compensation import (
    compensate_answer,
    pending_data_updates,
)
from repro.relational.delta import Delta
from repro.relational.predicate import InPredicate, attr
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType
from repro.sources.messages import DataUpdate, UpdateMessage

SCHEMA = RelationSchema.of(
    "R", [("k", AttributeType.INT), ("v", AttributeType.STRING)]
)

rows = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.sampled_from(["a", "b", "c"]),
)


def probe(values) -> SPJQuery:
    return SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "k"), attr("R", "v")),
        selection=InPredicate(attr("R", "k"), frozenset(values)),
    )


@st.composite
def scenario(draw):
    base_rows = draw(st.lists(rows, min_size=0, max_size=10))
    table = Table(SCHEMA, base_rows)
    deltas = []
    live = list(base_rows)
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        delta = Delta(SCHEMA)
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            if live and draw(st.booleans()):
                index = draw(
                    st.integers(min_value=0, max_value=len(live) - 1)
                )
                delta.add(live.pop(index), -1)
            else:
                row = draw(rows)
                delta.add(row, 1)
                live.append(row)
        deltas.append(delta)
    probe_values = draw(
        st.frozensets(st.integers(min_value=0, max_value=4), min_size=1)
    )
    return table, deltas, probe_values


@given(scenario())
@settings(max_examples=80, deadline=None)
def test_compensation_reconstructs_clean_answer(data):
    table, deltas, probe_values = data
    query = probe(probe_values)
    from repro.relational.executor import execute

    clean = execute(query, {"R": table.copy()})

    polluted_table = table.copy()
    messages = []
    for seqno, delta in enumerate(deltas, start=1):
        polluted_table.apply_delta(delta)
        messages.append(
            UpdateMessage(
                "s", seqno, float(seqno), DataUpdate("R", delta.copy())
            )
        )
    polluted = execute(query, {"R": polluted_table})

    leaked = pending_data_updates(
        messages, "s", "R", answered_at=float(len(deltas)) + 1
    )
    assert leaked == messages  # all committed before the answer
    corrected = compensate_answer(polluted, query, "R", leaked)
    assert corrected == clean


@given(scenario())
@settings(max_examples=40, deadline=None)
def test_compensation_ignores_post_answer_deltas(data):
    table, deltas, probe_values = data
    assume(deltas)
    query = probe(probe_values)
    from repro.relational.executor import execute

    # Only the first half of the deltas committed before the answer.
    cutoff = len(deltas) // 2
    visible_table = table.copy()
    for delta in deltas[:cutoff]:
        visible_table.apply_delta(delta)
    answer = execute(query, {"R": visible_table})

    messages = [
        UpdateMessage("s", i + 1, float(i + 1), DataUpdate("R", d.copy()))
        for i, d in enumerate(deltas)
    ]
    leaked = pending_data_updates(
        messages, "s", "R", answered_at=float(cutoff) + 0.5
    )
    corrected = compensate_answer(answer, query, "R", leaked)
    assert corrected == execute(query, {"R": table.copy()})
