"""Multi-view convergence under randomized concurrent workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import (
    RELATION_COUNT,
    build_testbed,
    relation_name,
    source_of_relation,
)
from repro.relational.executor import execute
from repro.relational.predicate import AttrRef
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.views.definition import ViewDefinition
from repro.views.multi import MultiViewManager


def subview(first: int, last: int) -> ViewDefinition:
    """A view joining relations R{first+1}..R{last} of the testbed."""
    relations = tuple(
        RelationRef(
            source_of_relation(index), relation_name(index), f"T{index + 1}"
        )
        for index in range(first, last)
    )
    projection = tuple(
        AttrRef(f"T{index + 1}", f"A{index + 1}")
        for index in range(first, last)
    )
    joins = tuple(
        JoinCondition(
            AttrRef(f"T{index + 1}", "K"), AttrRef(f"T{index + 2}", "K")
        )
        for index in range(first, last - 1)
    )
    return SPJQuery(relations, projection, joins)


@given(
    strategy=st.sampled_from([PESSIMISTIC, OPTIMISTIC]),
    seed=st.integers(min_value=0, max_value=5000),
    du_count=st.integers(min_value=0, max_value=12),
    sc_count=st.integers(min_value=0, max_value=3),
    sc_interval=st.floats(min_value=0.0, max_value=25.0),
)
@settings(max_examples=25, deadline=None)
def test_both_views_converge(
    strategy, seed, du_count, sc_count, sc_interval
):
    testbed = build_testbed(strategy, tuples_per_relation=25, seed=seed)
    engine = testbed.engine
    views = [
        ViewDefinition("Left", subview(0, 3)),
        ViewDefinition("Right", subview(2, RELATION_COUNT)),
    ]
    multi = MultiViewManager(engine, views)
    scheduler = DynoScheduler(multi, strategy)
    engine.schedule_workload(
        testbed.random_du_workload(du_count, 0.0, 0.4, seed=seed + 1)
    )
    engine.schedule_workload(
        testbed.schema_change_workload(
            sc_count, 0.0, sc_interval, seed=seed + 2
        )
    )
    scheduler.run()
    assert multi.umq.is_empty()
    for manager in multi.managers:
        tables = {
            ref.alias: engine.sources[ref.source].catalog.table(
                ref.relation
            )
            for ref in manager.view.query.relations
        }
        expected = execute(manager.view.query, tables)
        assert manager.mv.extent == expected, (
            f"view {manager.view.name} diverged "
            f"(seed={seed}, du={du_count}, sc={sc_count})"
        )
