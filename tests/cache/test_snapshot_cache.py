"""SnapshotCache: versioned hits, local patching, SC invalidation."""

from repro.cache import CacheHit, SnapshotCache, normalized_query_key
from repro.relational.executor import execute
from repro.relational.predicate import InPredicate, attr
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType
from repro.sim.metrics import Metrics
from repro.sources.messages import DataUpdate, DropAttribute
from repro.sources.source import DataSource

R = RelationSchema.of("R", [("k", AttributeType.INT), "a"])
T = RelationSchema.of("T", [("j", AttributeType.INT), "y"])


def make_source() -> DataSource:
    source = DataSource("s")
    source.create_relation(R, [(1, "p"), (2, "q"), (3, "r")])
    source.create_relation(T, [(1, "z")])
    return source


def probe(keys: frozenset) -> SPJQuery:
    return SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "k"), attr("R", "a")),
        selection=InPredicate(attr("R", "k"), keys),
    )


def evaluate(source: DataSource, query: SPJQuery):
    ref = query.relations[0]
    return execute(query, {ref.alias: source.catalog.table(ref.relation)})


def counted(table) -> dict:
    return dict(table.items())


class TestVersioning:
    def test_commit_version_counts_log(self):
        source = make_source()
        assert source.commit_version == 0  # initial load is not logged
        source.commit(DataUpdate.insert(R, [(4, "s")]))
        assert source.commit_version == 1
        assert [m.seqno for m in source.updates_since(0)] == [1]
        assert source.updates_since(1) == []

    def test_exact_version_hit(self):
        source, cache = make_source(), SnapshotCache()
        query = probe(frozenset({1, 2}))
        answer = evaluate(source, query)
        cache.store(source, query, answer)
        hit = cache.serve(source, query)
        assert isinstance(hit, CacheHit)
        assert not hit.patched
        assert counted(hit.table) == counted(answer)

    def test_miss_on_unknown_key(self):
        source, cache = make_source(), SnapshotCache()
        assert cache.serve(source, probe(frozenset({1}))) is None

    def test_key_is_normalized_query_text(self):
        query = probe(frozenset({2, 1}))
        same = probe(frozenset({1, 2}))
        assert normalized_query_key(query) == normalized_query_key(same)


class TestPatching:
    def test_du_gap_is_patched_to_current_state(self):
        source, cache = make_source(), SnapshotCache()
        query = probe(frozenset({1, 2, 5}))
        cache.store(source, query, evaluate(source, query))
        source.commit(DataUpdate.insert(R, [(5, "new"), (9, "other")]))
        source.commit(DataUpdate.delete(R, [(2, "q")]))
        hit = cache.serve(source, query)
        assert hit is not None and hit.patched
        assert counted(hit.table) == counted(evaluate(source, query))

    def test_patched_entry_is_restamped(self):
        source, cache = make_source(), SnapshotCache()
        query = probe(frozenset({1}))
        cache.store(source, query, evaluate(source, query))
        source.commit(DataUpdate.insert(R, [(1, "dup")]))
        first = cache.serve(source, query)
        assert first is not None and first.patched
        second = cache.serve(source, query)
        assert second is not None and not second.patched
        assert counted(second.table) == counted(first.table)

    def test_gap_du_on_other_relation_is_free(self):
        source, cache = make_source(), SnapshotCache()
        query = probe(frozenset({1}))
        cache.store(source, query, evaluate(source, query))
        source.commit(DataUpdate.insert(T, [(7, "w")]))
        metrics = Metrics()
        cache.metrics = metrics
        hit = cache.serve(source, query)
        assert hit is not None and not hit.patched
        assert metrics.patched_answers == 0
        assert counted(hit.table) == counted(evaluate(source, query))

    def test_duplicate_counts_survive_patching(self):
        source, cache = make_source(), SnapshotCache()
        query = probe(frozenset({3}))
        cache.store(source, query, evaluate(source, query))
        source.commit(DataUpdate.insert(R, [(3, "r"), (3, "r")]))
        hit = cache.serve(source, query)
        assert hit is not None
        assert counted(hit.table) == {(3, "r"): 3}

    def test_served_table_is_a_copy(self):
        source, cache = make_source(), SnapshotCache()
        query = probe(frozenset({1}))
        cache.store(source, query, evaluate(source, query))
        hit = cache.serve(source, query)
        hit.table.insert((99, "junk"))
        again = cache.serve(source, query)
        assert (99, "junk") not in again.table


class TestSchemaChangeInvalidation:
    def test_sc_in_gap_drops_entry(self):
        source, cache = make_source(), SnapshotCache(metrics=Metrics())
        query = probe(frozenset({1}))
        cache.store(source, query, evaluate(source, query))
        source.commit(DropAttribute("T", "y"))  # any SC, any relation
        assert cache.serve(source, query) is None
        assert cache.metrics.cache_invalidations_sc == 1
        assert len(cache) == 0
        # The slot is reusable after a fresh store.
        cache.store(source, query, evaluate(source, query))
        assert cache.serve(source, query) is not None


class TestPolicy:
    def test_multi_relation_queries_are_not_cacheable(self):
        source, cache = make_source(), SnapshotCache(metrics=Metrics())
        join = SPJQuery(
            relations=(
                RelationRef("s", "R", "R"),
                RelationRef("s", "T", "T"),
            ),
            projection=(attr("R", "a"), attr("T", "y")),
        )
        assert not SnapshotCache.cacheable(join)
        cache.store(source, join, evaluate(source, probe(frozenset({1}))))
        assert len(cache) == 0
        assert cache.serve(source, join) is None
        # Uncacheable traffic is invisible to the hit/miss counters.
        assert cache.metrics.cache_misses == 0

    def test_eviction_keeps_most_recent(self):
        source, cache = make_source(), SnapshotCache(max_entries=2)
        queries = [probe(frozenset({key})) for key in (1, 2, 3)]
        for query in queries:
            cache.store(source, query, evaluate(source, query))
        assert len(cache) == 2
        assert cache.serve(source, queries[0]) is None  # evicted
        assert cache.serve(source, queries[2]) is not None

    def test_hot_key_survives_churn_of_cold_keys(self):
        """LRU regression: an exact hit must refresh recency.  A hot
        key served on every round (with no gap to patch) used to stay
        at its insertion slot and get evicted FIFO-style once enough
        cold keys churned past ``max_entries``."""
        source, cache = make_source(), SnapshotCache(max_entries=2)
        hot = probe(frozenset({1}))
        cache.store(source, hot, evaluate(source, hot))
        for cold_key in (2, 3, 1, 2, 3, 2, 3):
            # Exact hit (same version, empty gap) before each insert.
            assert cache.serve(source, hot) is not None
            cold = probe(frozenset({cold_key, 99}))
            cache.store(source, cold, evaluate(source, cold))
        assert cache.serve(source, hot) is not None

    def test_invalidate_source_is_scoped(self):
        source, cache = make_source(), SnapshotCache()
        other = DataSource("t")
        other.create_relation(R, [(1, "p")])
        query = probe(frozenset({1}))
        other_query = SPJQuery(
            relations=(RelationRef("t", "R", "R"),),
            projection=(attr("R", "k"),),
            selection=InPredicate(attr("R", "k"), frozenset({1})),
        )
        cache.store(source, query, evaluate(source, query))
        cache.store(other, other_query, evaluate(other, other_query))
        assert cache.invalidate_source("s") == 1
        assert cache.serve(source, query) is None
        assert cache.serve(other, other_query) is not None

    def test_metrics_counters(self):
        metrics = Metrics()
        source, cache = make_source(), SnapshotCache(metrics=metrics)
        query = probe(frozenset({1}))
        assert cache.serve(source, query) is None
        cache.store(source, query, evaluate(source, query))
        cache.serve(source, query)
        source.commit(DataUpdate.insert(R, [(1, "more")]))
        cache.serve(source, query)
        assert metrics.cache_misses == 1
        assert metrics.cache_hits == 2
        assert metrics.saved_round_trips == 2
        assert metrics.patched_answers == 1
