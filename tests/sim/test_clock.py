"""Virtual clock invariants."""

import pytest

from repro.sim.clock import ClockError, SimClock


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_custom_start():
    assert SimClock(5.0).now == 5.0


def test_advance_to():
    clock = SimClock()
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_to_same_instant_ok():
    clock = SimClock(1.0)
    clock.advance_to(1.0)
    assert clock.now == 1.0


def test_advance_backwards_rejected():
    clock = SimClock(2.0)
    with pytest.raises(ClockError):
        clock.advance_to(1.0)


def test_advance_by():
    clock = SimClock()
    clock.advance_by(1.5)
    clock.advance_by(0.5)
    assert clock.now == 2.0


def test_negative_duration_rejected():
    with pytest.raises(ClockError):
        SimClock().advance_by(-1.0)


def test_repr():
    assert "now=" in repr(SimClock())
