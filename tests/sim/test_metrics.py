"""Metrics accumulation."""

from repro.sim.metrics import Metrics


def test_charge_accumulates_by_kind():
    metrics = Metrics()
    metrics.charge("query", 1.0)
    metrics.charge("query", 0.5)
    metrics.charge("vs_rewrite", 2.0)
    assert metrics.busy_time["query"] == 1.5
    assert metrics.total_busy_time == 3.5
    assert metrics.maintenance_cost == 3.5


def test_summary_keys():
    metrics = Metrics()
    metrics.charge("query", 1.0)
    metrics.abort_cost = 0.25
    metrics.aborts = 1
    summary = metrics.summary()
    assert summary["maintenance_cost"] == 1.0
    assert summary["abort_cost"] == 0.25
    assert summary["aborts"] == 1
    assert "view_refreshes" in summary
    assert "cycle_merges" in summary


def test_fresh_metrics_zero():
    metrics = Metrics()
    assert metrics.maintenance_cost == 0.0
    assert metrics.aborts == 0
    assert metrics.broken_queries == 0


def test_busy_breakdown_rounded_and_sorted():
    metrics = Metrics()
    metrics.charge("vs_rewrite", 2.00004)
    metrics.charge("maintenance_query", 1.5)
    breakdown = metrics.busy_breakdown()
    assert list(breakdown) == ["maintenance_query", "vs_rewrite"]
    assert breakdown["vs_rewrite"] == 2.0
    assert metrics.summary()["busy_breakdown"] == breakdown
