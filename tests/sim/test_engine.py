"""The discrete-event engine: windows, interleaving, process driving."""

import pytest

from repro.relational.predicate import InPredicate, attr
from repro.relational.query import RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.sim.costs import CostModel
from repro.sim.effects import Checkpoint, Delay, SourceQuery
from repro.sim.engine import QueryAnswer, SimEngine
from repro.sources.errors import BrokenQueryError
from repro.sources.messages import DataUpdate, RenameRelation
from repro.sources.source import DataSource
from repro.sources.workload import FixedUpdate, Workload, WorkloadItem

R = RelationSchema.of("R", ["a"])


@pytest.fixture
def engine() -> SimEngine:
    engine = SimEngine(CostModel(query_base=1.0, query_per_probe_value=0.0,
                                 query_per_result_tuple=0.0,
                                 query_per_scanned_tuple=0.0))
    source = engine.add_source(DataSource("s"))
    source.create_relation(R, [("x",)])
    return engine


def scan() -> SourceQuery:
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "a"),),
    )
    return SourceQuery("s", query)


class TestEventOrdering:
    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.advance_to(3.0)
        assert order == ["a", "b"]

    def test_ties_fire_in_schedule_order(self, engine):
        order = []
        engine.schedule(1.0, lambda: order.append("first"))
        engine.schedule(1.0, lambda: order.append("second"))
        engine.advance_to(1.0)
        assert order == ["first", "second"]

    def test_advance_to_next_event(self, engine):
        engine.schedule(5.0, lambda: None)
        assert engine.advance_to_next_event()
        assert engine.clock.now == 5.0
        assert not engine.advance_to_next_event()

    def test_drain(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.schedule(7.0, lambda: None)
        engine.drain_events()
        assert engine.clock.now == 7.0
        assert not engine.has_pending_events()


class TestEffects:
    def test_delay_advances_and_charges(self, engine):
        engine.perform(Delay(2.5, kind="vs_rewrite"))
        assert engine.clock.now == 2.5
        assert engine.metrics.busy_time["vs_rewrite"] == 2.5

    def test_checkpoint_returns_now(self, engine):
        engine.perform(Delay(1.0))
        assert engine.perform(Checkpoint()) == 1.0

    def test_unknown_effect_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.perform(object())

    def test_query_returns_answer_with_timestamp(self, engine):
        answer = engine.perform(scan())
        assert isinstance(answer, QueryAnswer)
        assert answer.answered_at == 1.0  # query_base
        assert ("x",) in answer.table

    def test_commit_inside_window_is_visible(self, engine):
        # query_base=1.0, commit at 0.5 -> included in the answer
        engine.schedule(
            0.5,
            lambda: engine.source("s").commit(
                DataUpdate.insert(R, [("y",)]), at=0.5
            ),
        )
        answer = engine.perform(scan())
        assert ("y",) in answer.table

    def test_commit_after_answer_not_visible(self, engine):
        engine.schedule(
            1.5,
            lambda: engine.source("s").commit(
                DataUpdate.insert(R, [("y",)]), at=1.5
            ),
        )
        answer = engine.perform(scan())
        assert ("y",) not in answer.table

    def test_schema_change_in_window_breaks_query(self, engine):
        engine.schedule(
            0.5,
            lambda: engine.source("s").commit(
                RenameRelation("R", "R2"), at=0.5
            ),
        )
        with pytest.raises(BrokenQueryError):
            engine.perform(scan())

    def test_probe_query_cost_uses_in_list(self):
        engine = SimEngine(
            CostModel(
                query_base=1.0,
                query_per_probe_value=0.1,
                query_per_result_tuple=0.0,
                query_per_scanned_tuple=100.0,  # must NOT be charged
            )
        )
        source = engine.add_source(DataSource("s"))
        source.create_relation(R, [("x",)])
        query = SPJQuery(
            relations=(RelationRef("s", "R", "R"),),
            projection=(attr("R", "a"),),
            selection=InPredicate(attr("R", "a"), frozenset({"x", "y"})),
        )
        engine.perform(SourceQuery("s", query))
        assert engine.clock.now == pytest.approx(1.2)


class TestWorkloadScheduling:
    def test_schedule_workload_commits(self, engine):
        workload = Workload()
        workload.add(
            1.0, "s", FixedUpdate(DataUpdate.insert(R, [("w",)]))
        )
        engine.schedule_workload(workload)
        engine.drain_events()
        assert ("w",) in engine.source("s").catalog.table("R")

    def test_none_intents_skipped(self, engine):
        class NullIntent:
            def materialize(self, source):
                return None

        engine.schedule_commit(WorkloadItem(1.0, "s", NullIntent()))
        engine.drain_events()
        assert len(engine.source("s").log) == 0

    def test_trace_records_commits(self):
        engine = SimEngine(CostModel.free(), trace=True)
        source = engine.add_source(DataSource("s"))
        source.create_relation(R)
        workload = Workload()
        workload.add(0.0, "s", FixedUpdate(DataUpdate.insert(R, [("t",)])))
        engine.schedule_workload(workload)
        engine.drain_events()
        commits = engine.tracer.of_kind("commit")
        assert len(commits) == 1
        assert "DU(R" in commits[0].detail


class TestRunProcess:
    def test_returns_generator_value(self, engine):
        def process():
            yield Delay(1.0)
            return "done"

        assert engine.run_process(process()) == "done"

    def test_immediate_return(self, engine):
        def process():
            return "now"
            yield  # pragma: no cover

        assert engine.run_process(process()) == "now"

    def test_broken_query_thrown_into_process(self, engine):
        engine.schedule(
            0.5,
            lambda: engine.source("s").commit(
                RenameRelation("R", "R2"), at=0.5
            ),
        )

        def process():
            try:
                yield scan()
            except BrokenQueryError:
                return "caught"
            return "missed"

        assert engine.run_process(process()) == "caught"
        assert engine.metrics.broken_queries == 1

    def test_unhandled_broken_query_propagates(self, engine):
        engine.schedule(
            0.5,
            lambda: engine.source("s").commit(
                RenameRelation("R", "R2"), at=0.5
            ),
        )

        def process():
            yield scan()

        with pytest.raises(BrokenQueryError):
            engine.run_process(process())

    def test_results_sent_back(self, engine):
        def process():
            answer = yield scan()
            return len(answer.table)

        assert engine.run_process(process()) == 1
