"""Typed execution traces."""

from repro.sim.costs import CostModel
from repro.sim.trace import ABORT, BROKEN, COMMIT, CORRECTION, QUERY, Tracer, TraceEvent


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, COMMIT, "x")
        assert len(tracer) == 0

    def test_enabled_records(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, COMMIT, "x")
        tracer.record(2.0, QUERY, "y")
        assert len(tracer) == 2
        assert [event.kind for event in tracer] == [COMMIT, QUERY]

    def test_of_kind(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, COMMIT, "a")
        tracer.record(2.0, ABORT, "b")
        tracer.record(3.0, COMMIT, "c")
        assert [event.detail for event in tracer.of_kind(COMMIT)] == [
            "a",
            "c",
        ]

    def test_between(self):
        tracer = Tracer(enabled=True)
        for at in (1.0, 2.0, 3.0, 4.0):
            tracer.record(at, QUERY, str(at))
        assert [e.at for e in tracer.between(2.0, 3.0)] == [2.0, 3.0]

    def test_timeline_limit(self):
        tracer = Tracer(enabled=True)
        for at in range(5):
            tracer.record(float(at), QUERY, f"q{at}")
        lines = tracer.timeline(limit=2).splitlines()
        assert len(lines) == 2
        assert "q4" in lines[-1]

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, QUERY, "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_event_str_format(self):
        event = TraceEvent(1.5, COMMIT, "detail here")
        text = str(event)
        assert "1.500" in text and "commit" in text and "detail here" in text


class TestEndToEndTrace:
    def test_scheduler_records_aborts_and_corrections(self):
        from repro.core.scheduler import DynoScheduler
        from repro.core.strategies import OPTIMISTIC
        from repro.sources.messages import DropAttribute, RenameRelation
        from repro.sources.workload import FixedUpdate, Workload
        from tests.conftest import build_bookstore

        engine, manager = build_bookstore(CostModel(query_base=1.0))
        engine.tracer.enabled = True
        workload = Workload()
        workload.add(
            0.0, "library", FixedUpdate(DropAttribute("Catalog", "Review"))
        )
        workload.add(
            3.5, "retailer", FixedUpdate(RenameRelation("Item", "Item2"))
        )
        engine.schedule_workload(workload)
        DynoScheduler(manager, OPTIMISTIC).run()

        assert engine.tracer.of_kind(COMMIT)
        assert engine.tracer.of_kind(QUERY)
        assert engine.tracer.of_kind(BROKEN)
        assert engine.tracer.of_kind(ABORT)
        assert engine.tracer.of_kind(CORRECTION)
        # abort events carry the wasted time
        assert "wasted" in engine.tracer.of_kind(ABORT)[0].detail
        # chronological order
        times = [event.at for event in engine.tracer]
        assert times == sorted(times)
