"""Cost model arithmetic and calibration targets."""

import pytest

from repro.sim.costs import CostModel


class TestDerivedCosts:
    def test_probe_query(self):
        cost = CostModel(
            query_base=1.0,
            query_per_probe_value=0.1,
            query_per_result_tuple=0.01,
        )
        assert cost.probe_query(10, 5) == pytest.approx(1.0 + 1.0 + 0.05)

    def test_scan_query(self):
        cost = CostModel(
            query_base=1.0,
            query_per_scanned_tuple=0.001,
            query_per_result_tuple=0.01,
        )
        assert cost.scan_query(1000, 10) == pytest.approx(1.0 + 1.0 + 0.1)

    def test_refresh(self):
        cost = CostModel(refresh_base=0.5, refresh_per_tuple=0.1)
        assert cost.refresh(10) == pytest.approx(1.5)

    def test_detection_and_correction(self):
        cost = CostModel(
            detection_per_node=0.1,
            detection_per_edge=0.2,
            correction_per_element=0.3,
        )
        assert cost.detection(2, 3) == pytest.approx(0.8)
        assert cost.correction(2, 3) == pytest.approx(1.5)


class TestFactories:
    def test_free_model_is_all_zero(self):
        cost = CostModel.free()
        assert cost.probe_query(100, 100) == 0.0
        assert cost.scan_query(100, 100) == 0.0
        assert cost.refresh(100) == 0.0
        assert cost.vs_rewrite == 0.0

    def test_calibrated_du_regime(self):
        """One DU maintenance over the 6-way view ≈ 0.2 virtual s."""
        cost = CostModel.calibrated(2000)
        du_cost = 5 * cost.probe_query(1, 1) + cost.refresh(1)
        assert 0.15 < du_cost < 0.35

    def test_calibrated_sc_regime(self):
        """One SC maintenance ≈ 20-30 virtual s, dominated by scans."""
        n = 2000
        cost = CostModel.calibrated(n)
        sc_cost = (
            cost.vs_rewrite
            + 6 * cost.scan_query(n, n)
            + cost.va_base
            + cost.va_per_tuple * n
        )
        assert 18 < sc_cost < 32

    def test_calibration_scale_invariant(self):
        """Virtual times should not depend on the testbed scale."""
        for n in (100, 1000, 10_000):
            cost = CostModel.calibrated(n)
            sc_cost = cost.vs_rewrite + 6 * cost.scan_query(n, n)
            assert sc_cost == pytest.approx(
                CostModel.calibrated(100).vs_rewrite
                + 6 * CostModel.calibrated(100).scan_query(100, 100),
                rel=0.01,
            )

    def test_sc_dwarfs_du(self):
        """The asymmetry Figures 9-12 rest on."""
        n = 2000
        cost = CostModel.calibrated(n)
        du = 5 * cost.probe_query(1, 1)
        sc = cost.vs_rewrite + 6 * cost.scan_query(n, n)
        assert sc > 50 * du
