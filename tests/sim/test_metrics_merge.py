"""Metrics.merge: counters sum, gauges take the max, Counters merge."""

from dataclasses import fields

from repro.sim.metrics import _GAUGE_FIELDS, Metrics


def _sample(scale: int) -> Metrics:
    metrics = Metrics()
    metrics.charge("query", 1.5 * scale)
    metrics.charge("vs_rewrite", 0.25 * scale)
    metrics.aborts = scale
    metrics.maintained_updates = 10 * scale
    metrics.router_delivered = 3 * scale
    metrics.router_dropped = scale
    metrics.barrier_deferrals = 2 * scale
    metrics.reads_served = 100 * scale
    metrics.read_latency_time = 0.5 * scale
    metrics.staleness_time = 0.125 * scale
    metrics.makespan = 4.0 * scale
    metrics.peak_parallelism = scale + 1
    metrics.worker_busy_time[0] += 1.0 * scale
    return metrics


def test_merge_sums_scalar_counters():
    merged = Metrics.merge([_sample(1), _sample(2)])
    assert merged.aborts == 3
    assert merged.maintained_updates == 30
    assert merged.router_delivered == 9
    assert merged.router_dropped == 3
    assert merged.barrier_deferrals == 6
    assert merged.reads_served == 300
    assert merged.read_latency_time == 1.5
    assert merged.staleness_time == 0.375


def test_merge_takes_max_of_gauges():
    merged = Metrics.merge([_sample(3), _sample(1)])
    assert merged.makespan == 12.0
    assert merged.peak_parallelism == 4


def test_merge_unions_counter_fields_per_key():
    left = Metrics()
    left.charge("query", 1.0)
    left.worker_busy_time[0] += 2.0
    right = Metrics()
    right.charge("query", 0.5)
    right.charge("va_sync", 0.25)
    right.worker_busy_time[1] += 3.0
    merged = Metrics.merge([left, right])
    assert merged.busy_time["query"] == 1.5
    assert merged.busy_time["va_sync"] == 0.25
    assert merged.worker_busy_time == {0: 2.0, 1: 3.0}
    assert merged.total_busy_time == 1.75


def test_merge_of_nothing_is_fresh():
    merged = Metrics.merge([])
    assert merged.maintenance_cost == 0.0
    assert merged.reads_served == 0


def test_merge_identity_single_run():
    run = _sample(2)
    merged = Metrics.merge([run])
    for spec in fields(Metrics):
        assert getattr(merged, spec.name) == getattr(run, spec.name), spec.name


def test_merge_covers_every_field_generically():
    """Every numeric field participates: merging two identical runs must
    double every non-gauge numeric field and keep every gauge fixed —
    so a counter added later is covered with no change here."""
    run_a, run_b = _sample(1), _sample(1)
    merged = Metrics.merge([run_a, run_b])
    for spec in fields(Metrics):
        single = getattr(run_a, spec.name)
        combined = getattr(merged, spec.name)
        if spec.name in _GAUGE_FIELDS:
            assert combined == single, spec.name
        elif isinstance(single, (int, float)):
            assert combined == 2 * single, spec.name


def test_gauge_fields_exist():
    names = {spec.name for spec in fields(Metrics)}
    assert _GAUGE_FIELDS <= names
