"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e . --no-build-isolation``) on
machines where PEP 517 builds are unavailable.
"""

from setuptools import setup

setup()
