#!/usr/bin/env python3
"""Watching Dyno work: a typed trace of aborts and corrections.

Runs the testbed under the optimistic strategy with schema changes
timed to land mid-maintenance, then prints the recorded timeline —
commits, broken queries, aborts (with wasted time), corrections — and a
per-anomaly-type summary.

Run:  python examples/abort_timeline.py
"""

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import OPTIMISTIC
from repro.experiments.testbed import build_testbed
from repro.sim import trace as kinds
from repro.views.consistency import check_convergence


def main() -> None:
    testbed = build_testbed(OPTIMISTIC, tuples_per_relation=500)
    engine = testbed.engine
    engine.tracer.enabled = True
    testbed.scheduler = DynoScheduler(testbed.manager, OPTIMISTIC)

    testbed.engine.schedule_workload(
        testbed.random_du_workload(30, start=0.0, interval=0.5, seed=7)
    )
    # interval near one SC maintenance time: the worst-case band
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(4, start=0.0, interval=17.0, seed=11)
    )
    testbed.run()

    print("=== headline events ===")
    for kind in (kinds.BROKEN, kinds.ABORT, kinds.CORRECTION):
        for event in engine.tracer.of_kind(kind):
            print(" ", event)

    print("\n=== last 10 events of the full timeline ===")
    print(engine.tracer.timeline(limit=10))

    metrics = engine.metrics
    print("\n=== summary ===")
    print(
        f"  total cost {metrics.maintenance_cost:.1f}s, of which abort "
        f"{metrics.abort_cost:.1f}s across {metrics.aborts} aborts"
    )
    for anomaly, count in metrics.anomalies.items():
        print(f"  anomaly type {anomaly.value} ({anomaly.name}): {count}")
    print(" ", check_convergence(testbed.manager).summary())


if __name__ == "__main__":
    main()
