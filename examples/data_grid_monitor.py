#!/usr/bin/env python3
"""Data-Grid monitor: the paper's full testbed under a mixed storm.

Six relations over three autonomous source servers, a 24-attribute
one-to-one join view, 150 data updates and 8 schema changes arriving
concurrently.  The script races all four strategies over the identical
workload and prints a comparison table — the Section 6.4 experiment in
miniature.

Run:  python examples/data_grid_monitor.py
"""

from repro.core.strategies import BLIND_MERGE, NAIVE, OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.views.consistency import check_convergence

TUPLES = 1000
DU_COUNT = 150
SC_COUNT = 8
SC_INTERVAL = 17.0  # near one SC maintenance time: the worst case


def run_strategy(strategy):
    testbed = build_testbed(strategy, tuples_per_relation=TUPLES, seed=3)
    testbed.engine.schedule_workload(
        testbed.random_du_workload(DU_COUNT, start=0.0, interval=0.5, seed=7)
    )
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(
            SC_COUNT, start=0.0, interval=SC_INTERVAL, seed=11
        )
    )
    testbed.run()
    report = check_convergence(testbed.manager)
    metrics = testbed.metrics
    return {
        "strategy": strategy.name,
        "total_cost": metrics.maintenance_cost,
        "abort_cost": metrics.abort_cost,
        "aborts": metrics.aborts,
        "broken": metrics.broken_queries,
        "merges": metrics.cycle_merges,
        "refreshes": metrics.view_refreshes,
        "skipped": testbed.scheduler.stats.skipped_updates,
        "consistent": "yes" if report.consistent else "NO",
    }


def main() -> None:
    print(
        f"testbed: 6 relations x {TUPLES} tuples over 3 sources; "
        f"{DU_COUNT} DUs + {SC_COUNT} SCs at {SC_INTERVAL}s intervals\n"
    )
    header = (
        f"{'strategy':<14} {'total(s)':>9} {'abort(s)':>9} {'aborts':>7} "
        f"{'broken':>7} {'merges':>7} {'refreshes':>10} {'skipped':>8} "
        f"{'consistent':>11}"
    )
    print(header)
    print("-" * len(header))
    for strategy in (PESSIMISTIC, OPTIMISTIC, BLIND_MERGE, NAIVE):
        row = run_strategy(strategy)
        print(
            f"{row['strategy']:<14} {row['total_cost']:>9.1f} "
            f"{row['abort_cost']:>9.1f} {row['aborts']:>7} "
            f"{row['broken']:>7} {row['merges']:>7} "
            f"{row['refreshes']:>10} {row['skipped']:>8} "
            f"{row['consistent']:>11}"
        )
    print(
        "\nreading the table: both Dyno strategies converge while "
        "refreshing the view\nat the finest granularity (most "
        "intermediate states); blind merge converges\nbut collapses "
        "many updates into few big refreshes; the naive baseline "
        "skips\nevery broken update and leaves the view permanently "
        "inconsistent."
    )


if __name__ == "__main__":
    main()
