#!/usr/bin/env python3
"""The cyclic-dependency deadlock of Section 3.5 — and its resolution.

Two schema changes commit at their sources:

* SC1 — the retailer's XML remapping collapses Store+Item into
  StoreItems (would rewrite the view into Query (3));
* SC2 — the library drops Catalog.Review (would rewrite the view into
  Query (4), pulling in ReaderDigest).

Each rewrite is invalid under the *other* change, so the dependency
graph contains a cycle — a maintenance deadlock that cannot be resolved
by aborting (the source updates are committed).  Dyno merges the cycle
into one batch: both changes are combined, the view is rewritten once
into Query (5), and a single adaptation installs the new extent.

Run:  python examples/cyclic_dependency.py
"""

from repro import (
    AttributeReplacement,
    AttributeType,
    CostModel,
    DataSource,
    DropAttribute,
    DynoScheduler,
    JoinCondition,
    MetaKnowledgeBase,
    PESSIMISTIC,
    RelationRef,
    RelationReplacement,
    RelationSchema,
    RestructureRelations,
    SPJQuery,
    SimEngine,
    ViewDefinition,
    ViewManager,
    Workload,
    attr,
    check_convergence,
    correct,
)
from repro.sources import FixedUpdate

STORE = RelationSchema.of("Store", [("SID", AttributeType.INT), "Store"])
ITEM = RelationSchema.of(
    "Item",
    [
        ("SID", AttributeType.INT),
        "Book",
        "Author",
        ("Price", AttributeType.FLOAT),
    ],
)
CATALOG = RelationSchema.of(
    "Catalog", ["Title", "Author", "Category", "Publisher", "Review"]
)
READER = RelationSchema.of("ReaderDigest", ["Article", "Comments"])
STOREITEMS = RelationSchema.of(
    "StoreItems", ["Store", "Book", "Author", ("Price", AttributeType.FLOAT)]
)


def main() -> None:
    engine = SimEngine(CostModel.paper_default())
    retailer = engine.add_source(DataSource("retailer"))
    library = engine.add_source(DataSource("library"))
    digest = engine.add_source(DataSource("digest"))

    retailer.create_relation(STORE, [(1, "Amazon"), (2, "BN")])
    retailer.create_relation(
        ITEM,
        [(1, "Databases", "Gray", 50.0), (2, "Compilers", "Aho", 40.0)],
    )
    library.create_relation(
        CATALOG,
        [
            ("Databases", "Gray", "CS", "MIT", "good"),
            ("Compilers", "Aho", "CS", "AW", "classic"),
        ],
    )
    digest.create_relation(
        READER, [("Databases", "must read"), ("Compilers", "dragon")]
    )

    query = SPJQuery(
        relations=(
            RelationRef("retailer", "Store", "S"),
            RelationRef("retailer", "Item", "I"),
            RelationRef("library", "Catalog", "C"),
        ),
        projection=(
            attr("S", "Store"),
            attr("I", "Book"),
            attr("I", "Author"),
            attr("I", "Price"),
            attr("C", "Publisher"),
            attr("C", "Category"),
            attr("C", "Review"),
        ),
        joins=(
            JoinCondition(attr("S", "SID"), attr("I", "SID")),
            JoinCondition(attr("I", "Book"), attr("C", "Title")),
        ),
    )

    mkb = MetaKnowledgeBase()
    mkb.add_relation_replacement(
        RelationReplacement(
            source="retailer",
            covers=("Store", "Item"),
            new_source="retailer",
            new_relation="StoreItems",
            attr_map={
                ("Store", "Store"): "Store",
                ("Item", "Book"): "Book",
                ("Item", "Author"): "Author",
                ("Item", "Price"): "Price",
            },
        )
    )
    mkb.add_attribute_replacement(
        AttributeReplacement(
            source="library",
            relation="Catalog",
            attribute="Review",
            new_source="digest",
            new_relation="ReaderDigest",
            new_attribute="Comments",
            join_on=("Catalog", "Title"),
            join_attribute="Article",
        )
    )

    manager = ViewManager(engine, ViewDefinition("BookInfo", query), mkb)
    print("original definition (Query 1):")
    print(" ", manager.view.sql())

    # The two autonomously committed, mutually conflicting changes.
    workload = Workload()
    workload.add(
        0.0,
        "retailer",
        FixedUpdate(
            RestructureRelations(
                dropped=("Store", "Item"),
                new_schema=STOREITEMS,
                new_rows=(
                    ("Amazon", "Databases", "Gray", 50.0),
                    ("BN", "Compilers", "Aho", 40.0),
                ),
            )
        ),
    )
    workload.add(
        0.0, "library", FixedUpdate(DropAttribute("Catalog", "Review"))
    )
    engine.schedule_workload(workload)

    # Peek at the dependency graph before running: there is a cycle.
    engine.advance_to_next_event()
    result = correct(manager.umq.messages(), manager.view.query)
    print("\ndependency analysis of the queue:")
    print(f"  nodes: {result.node_count}, edges: {result.edge_count}")
    print(f"  cycles merged into batches: {result.merges}")
    for unit in result.units:
        print("  scheduled unit:", unit.describe())

    DynoScheduler(manager, PESSIMISTIC).run()

    print("\nrewritten definition (Query 5):")
    print(" ", manager.view.sql())
    print("\nfinal extent:")
    for row in sorted(manager.mv.extent.rows()):
        print("  row:", row)
    print("\n" + check_convergence(manager).summary())


if __name__ == "__main__":
    main()
