#!/usr/bin/env python3
"""The broken-query anomaly (Example 1.b) — naive vs Dyno.

Act 1: the retailer re-tunes its XML-to-relational mapping, collapsing
Store and Item into a single StoreItems table (Figure 2).  A maintenance
query built from the old schema knowledge breaks.  The naive FIFO view
manager drops the in-flight update on the floor; Dyno detects the unsafe
dependency, reorders (synchronizing the view into the Query (3) form
first) and never sends the doomed query.

Act 2: a cascade — a second schema change breaks the *first schema
change's* maintenance.  The naive manager skips it, leaving the view
definition permanently stale, so every later maintenance query breaks
too and the view diverges from the sources for good.  Dyno merges the
conflicting changes and converges.

Run:  python examples/broken_query_demo.py
"""

from repro import (
    AttributeType,
    CostModel,
    DataSource,
    DataUpdate,
    DynoScheduler,
    JoinCondition,
    MetaKnowledgeBase,
    NAIVE,
    PESSIMISTIC,
    RelationRef,
    RelationReplacement,
    RelationSchema,
    RestructureRelations,
    SPJQuery,
    SimEngine,
    ViewDefinition,
    ViewManager,
    Workload,
    attr,
    check_convergence,
)
from repro.sources import FixedUpdate

STORE = RelationSchema.of("Store", [("SID", AttributeType.INT), "Store"])
ITEM = RelationSchema.of(
    "Item",
    [
        ("SID", AttributeType.INT),
        "Book",
        "Author",
        ("Price", AttributeType.FLOAT),
    ],
)
CATALOG = RelationSchema.of(
    "Catalog", ["Title", "Author", "Category", "Publisher", "Review"]
)
STOREITEMS = RelationSchema.of(
    "StoreItems", ["Store", "Book", "Author", ("Price", AttributeType.FLOAT)]
)


def build(strategy_name: str) -> tuple[SimEngine, ViewManager]:
    engine = SimEngine(CostModel.paper_default())
    retailer = engine.add_source(DataSource("retailer"))
    library = engine.add_source(DataSource("library"))
    retailer.create_relation(STORE, [(1, "Amazon")])
    retailer.create_relation(ITEM, [(1, "Databases", "Gray", 50.0)])
    library.create_relation(
        CATALOG, [("Databases", "Gray", "CS", "MIT", "good")]
    )

    query = SPJQuery(
        relations=(
            RelationRef("retailer", "Store", "S"),
            RelationRef("retailer", "Item", "I"),
            RelationRef("library", "Catalog", "C"),
        ),
        projection=(
            attr("S", "Store"),
            attr("I", "Book"),
            attr("I", "Author"),
            attr("I", "Price"),
            attr("C", "Publisher"),
            attr("C", "Review"),
        ),
        joins=(
            JoinCondition(attr("S", "SID"), attr("I", "SID")),
            JoinCondition(attr("I", "Book"), attr("C", "Title")),
        ),
    )
    # The MKB knows StoreItems can stand in for Store ⋈ Item.
    mkb = MetaKnowledgeBase()
    mkb.add_relation_replacement(
        RelationReplacement(
            source="retailer",
            covers=("Store", "Item"),
            new_source="retailer",
            new_relation="StoreItems",
            attr_map={
                ("Store", "Store"): "Store",
                ("Item", "Book"): "Book",
                ("Item", "Author"): "Author",
                ("Item", "Price"): "Price",
            },
        )
    )
    manager = ViewManager(engine, ViewDefinition("BookInfo", query), mkb)
    return engine, manager


def workload() -> Workload:
    items = Workload()
    # A new book arrives at the library (the update being maintained)...
    items.add(
        0.0,
        "library",
        FixedUpdate(
            DataUpdate.insert(
                CATALOG,
                [
                    (
                        "Data Integration Guide",
                        "Adams",
                        "Eng",
                        "Princeton",
                        "new",
                    )
                ],
            )
        ),
    )
    # ...and at (nearly) the same instant the retailer restructures.
    items.add(
        0.0,
        "retailer",
        FixedUpdate(
            RestructureRelations(
                dropped=("Store", "Item"),
                new_schema=STOREITEMS,
                new_rows=(
                    ("Amazon", "Databases", "Gray", 50.0),
                    ("Amazon", "Data Integration Guide", "Adams", 35.99),
                ),
            )
        ),
    )
    return items


def cascade_workload() -> Workload:
    """Act 2: SC breaks M(SC) and the naive manager never recovers."""
    from repro import DropAttribute, RenameRelation

    items = Workload()
    items.add(
        0.0, "library", FixedUpdate(DropAttribute("Catalog", "Review"))
    )
    # Commits while the drop's view adaptation is scanning Item:
    items.add(
        3.5, "retailer", FixedUpdate(RenameRelation("Item", "Items2"))
    )
    # A later data update (against the post-drop 4-column schema):
    # lost by naive, whose maintenance queries still use stale names.
    post_drop_catalog = CATALOG.drop_attribute("Review")
    items.add(
        30.0,
        "library",
        FixedUpdate(
            DataUpdate.insert(
                post_drop_catalog,
                [("Data Integration Guide", "Adams", "E", "P")],
            )
        ),
    )
    return items


def run(strategy, label: str, items: Workload, cost=None) -> None:
    engine, manager = build(label) if cost is None else build_with(cost)
    engine.schedule_workload(items)
    stats = DynoScheduler(manager, strategy).run()
    report = check_convergence(manager)
    print(f"--- {label} ---")
    print("  final definition:", manager.view.query.sql())
    print(
        f"  broken queries: {engine.metrics.broken_queries}, "
        f"skipped updates: {stats.skipped_updates}, "
        f"cycle merges: {engine.metrics.cycle_merges}"
    )
    print(" ", report.summary())
    for row in sorted(manager.mv.extent.rows()):
        print("  row:", row)
    print()


def build_with(cost) -> tuple[SimEngine, ViewManager]:
    engine, manager = build("cascade")
    engine.cost_model = cost
    return engine, manager


def main() -> None:
    print("=== Act 1: restructuring breaks a DU maintenance ===\n")
    run(NAIVE, "naive FIFO (pre-Dyno state of the art)", workload())
    run(PESSIMISTIC, "Dyno (pessimistic)", workload())

    print("=== Act 2: a cascade of broken schema-change maintenance ===\n")
    slow = CostModel(query_base=1.0)
    run(NAIVE, "naive FIFO — diverges permanently", cascade_workload(), slow)
    run(PESSIMISTIC, "Dyno (pessimistic)", cascade_workload(), slow)


if __name__ == "__main__":
    main()
