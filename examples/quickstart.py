#!/usr/bin/env python3
"""Quickstart: the paper's bookstore view, one data update, one schema
change, maintained by Dyno.

Run:  python examples/quickstart.py
"""

from repro import (
    AttributeType,
    CostModel,
    DataSource,
    DataUpdate,
    DropAttribute,
    DynoScheduler,
    JoinCondition,
    PESSIMISTIC,
    RelationRef,
    RelationSchema,
    SPJQuery,
    SimEngine,
    ViewDefinition,
    ViewManager,
    Workload,
    attr,
    check_convergence,
)
from repro.sources import FixedUpdate


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Autonomous sources (each could be a different provider).
    # ------------------------------------------------------------------
    engine = SimEngine(CostModel.paper_default())
    retailer = engine.add_source(DataSource("retailer"))
    library = engine.add_source(DataSource("library"))

    store = RelationSchema.of("Store", [("SID", AttributeType.INT), "Store"])
    item = RelationSchema.of(
        "Item",
        [
            ("SID", AttributeType.INT),
            "Book",
            "Author",
            ("Price", AttributeType.FLOAT),
        ],
    )
    catalog = RelationSchema.of(
        "Catalog", ["Title", "Author", "Category", "Publisher", "Review"]
    )

    retailer.create_relation(store, [(1, "Amazon"), (2, "BN")])
    retailer.create_relation(
        item,
        [(1, "Databases", "Gray", 50.0), (2, "Compilers", "Aho", 40.0)],
    )
    library.create_relation(
        catalog,
        [
            ("Databases", "Gray", "CS", "MIT", "good"),
            ("Compilers", "Aho", "CS", "AW", "classic"),
        ],
    )

    # ------------------------------------------------------------------
    # 2. The BookInfo materialized view (Query 1 of the paper).
    # ------------------------------------------------------------------
    query = SPJQuery(
        relations=(
            RelationRef("retailer", "Store", "S"),
            RelationRef("retailer", "Item", "I"),
            RelationRef("library", "Catalog", "C"),
        ),
        projection=(
            attr("S", "Store"),
            attr("I", "Book"),
            attr("I", "Author"),
            attr("I", "Price"),
            attr("C", "Publisher"),
            attr("C", "Category"),
            attr("C", "Review"),
        ),
        joins=(
            JoinCondition(attr("S", "SID"), attr("I", "SID")),
            JoinCondition(attr("I", "Book"), attr("C", "Title")),
        ),
    )
    manager = ViewManager(engine, ViewDefinition("BookInfo", query))
    print("view definition:")
    print(" ", manager.view.sql())
    print(f"initial extent: {len(manager.mv.extent)} rows")

    # ------------------------------------------------------------------
    # 3. Autonomous updates: a new book, a matching item, and a schema
    #    change — all committed without asking the view manager.
    # ------------------------------------------------------------------
    workload = Workload()
    workload.add(
        0.0,
        "library",
        FixedUpdate(
            DataUpdate.insert(
                catalog,
                [("Data Integration Guide", "Adams", "Eng", "P", "new")],
            )
        ),
    )
    workload.add(
        0.005,
        "retailer",
        FixedUpdate(
            DataUpdate.insert(
                item, [(1, "Data Integration Guide", "Adams", 35.99)]
            )
        ),
    )
    # Category is projected by the view: this schema change conflicts.
    workload.add(
        1.0, "library", FixedUpdate(DropAttribute("Catalog", "Category"))
    )
    engine.schedule_workload(workload)

    # ------------------------------------------------------------------
    # 4. Run Dyno (pessimistic strategy, the paper's choice).
    # ------------------------------------------------------------------
    scheduler = DynoScheduler(manager, PESSIMISTIC)
    scheduler.run()

    print("\nafter maintenance:")
    print(" ", manager.view.sql())
    for row in sorted(manager.mv.extent.rows()):
        print("  row:", row)

    report = check_convergence(manager)
    print("\nconsistency check:", report.summary())
    print("metrics:", engine.metrics.summary())


if __name__ == "__main__":
    main()
