#!/usr/bin/env python3
"""Two materialized views, defined in SQL, over one update stream.

Demonstrates two library extensions beyond the paper's single-view
prototype:

* views are declared with the SQL front-end (``parse_view``), the FROM
  clause qualifying each relation with its source;
* a :class:`MultiViewManager` maintains both views over ONE shared UMQ
  and one Dyno scheduler — dependency detection unions the views'
  maintenance footprints, and every update is applied to all views
  atomically.

Run:  python examples/multi_view_sql.py
"""

from repro import (
    AttributeType,
    CostModel,
    DataSource,
    DataUpdate,
    DropAttribute,
    DynoScheduler,
    MultiViewManager,
    PESSIMISTIC,
    RelationSchema,
    RenameRelation,
    SimEngine,
    ViewDefinition,
    Workload,
    parse_view,
)
from repro.sources import FixedUpdate

ITEM = RelationSchema.of(
    "Item",
    [
        ("SID", AttributeType.INT),
        "Book",
        "Author",
        ("Price", AttributeType.FLOAT),
    ],
)
CATALOG = RelationSchema.of(
    "Catalog", ["Title", "Author", "Category", "Publisher", "Review"]
)

BOOKINFO_SQL = """
CREATE VIEW BookInfo AS
SELECT I.Book, I.Author, I.Price, C.Publisher, C.Review
FROM retailer.Item I, library.Catalog C
WHERE I.Book = C.Title
"""

CHEAP_SQL = """
CREATE VIEW CheapBooks AS
SELECT I.Book, I.Price
FROM retailer.Item I
WHERE I.Price < 45
"""


def main() -> None:
    engine = SimEngine(CostModel.paper_default())
    retailer = engine.add_source(DataSource("retailer"))
    library = engine.add_source(DataSource("library"))
    retailer.create_relation(
        ITEM,
        [(1, "Databases", "Gray", 50.0), (2, "Compilers", "Aho", 40.0)],
    )
    library.create_relation(
        CATALOG,
        [
            ("Databases", "Gray", "CS", "MIT", "good"),
            ("Compilers", "Aho", "CS", "AW", "classic"),
        ],
    )

    views = [
        ViewDefinition(name, query)
        for name, query in (
            parse_view(BOOKINFO_SQL),
            parse_view(CHEAP_SQL),
        )
    ]
    multi = MultiViewManager(engine, views)
    for manager in multi.managers:
        print(manager.view.sql())
        print(f"  initial rows: {len(manager.mv.extent)}")

    workload = Workload()
    workload.add(
        0.0,
        "retailer",
        FixedUpdate(
            DataUpdate.insert(ITEM, [(1, "Datalog", "Ullman", 30.0)])
        ),
    )
    workload.add(
        0.0,
        "library",
        FixedUpdate(
            DataUpdate.insert(
                CATALOG, [("Datalog", "Ullman", "CS", "PH", "deep")]
            )
        ),
    )
    # A rename that hits BOTH views plus a drop that hits only BookInfo:
    workload.add(5.0, "retailer", FixedUpdate(RenameRelation("Item", "Stock")))
    workload.add(30.0, "library", FixedUpdate(DropAttribute("Catalog", "Review")))
    engine.schedule_workload(workload)

    DynoScheduler(multi, PESSIMISTIC).run()

    print("\nafter the storm:")
    for manager in multi.managers:
        print(manager.view.sql())
        for row in sorted(manager.mv.extent.rows()):
            print("   row:", row)
    print("\nmetrics:", engine.metrics.summary())


if __name__ == "__main__":
    main()
