#!/usr/bin/env python3
"""Unreliable sources: a crash-and-recover fault plan under Dyno.

A two-source join view is maintained while source ``parts`` crashes for
two virtual seconds mid-stream and the wrapper link from ``orders``
delays and drops messages.  The scheduler retries with backoff,
quarantines the crashed source when retries exhaust, keeps maintaining
everything that does not depend on it, and drains the backlog on
recovery — converging to exactly the fault-free extent.

Run:  PYTHONPATH=src python examples/unreliable_sources.py
"""

from repro import (
    CrashWindow,
    DataUpdate,
    DyDaSystem,
    FaultPlan,
    LinkFault,
    PESSIMISTIC,
    RelationSchema,
    RetryPolicy,
    TransientFault,
)

ORDERS = RelationSchema.of("Orders", ["OID", "Part"])
PARTS = RelationSchema.of("Parts", ["Part", "Price"])


def build(fault_plan=None, retry_policy=None) -> DyDaSystem:
    system = DyDaSystem(
        strategy=PESSIMISTIC,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    orders = system.add_source("orders")
    parts = system.add_source("parts")
    orders.create_relation(ORDERS, [("o1", "bolt")])
    parts.create_relation(PARTS, [("bolt", "0.10")])
    system.define_view(
        "CREATE VIEW OrderCosts AS "
        "SELECT O.OID, O.Part, P.Price FROM orders.Orders O, parts.Parts P "
        "WHERE O.Part = P.Part"
    )
    catalog = ["nut", "washer", "screw", "rivet"]
    for index, part in enumerate(catalog):
        at = 0.4 * index
        system.schedule(
            at, "parts", DataUpdate.insert(PARTS, [(part, "0.05")])
        )
        system.schedule(
            at + 0.1,
            "orders",
            DataUpdate.insert(ORDERS, [(f"o{index + 2}", part)]),
        )
    return system


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The fault-free reference run.
    # ------------------------------------------------------------------
    baseline = build()
    baseline.run()
    print(f"fault-free: {baseline.check().summary()}")
    print(f"fault-free maintenance ended at t={baseline.now:.3f}\n")

    # ------------------------------------------------------------------
    # 2. The same workload under a crash-and-recover fault plan.
    # ------------------------------------------------------------------
    plan = FaultPlan(
        # `parts` is down for two virtual seconds mid-stream; every
        # query inside the window fails with a recovery hint.
        crashes=(CrashWindow("parts", start=0.3, end=2.3),),
        # ...and flaky for its first two attempts even when up.
        transients=(
            TransientFault("parts", 0),
            TransientFault("parts", 1, kind="timeout", timeout=0.4),
        ),
        # The link from `orders` delays one message and drops another
        # (redelivered late — committed updates are never lost).
        link_faults=(
            LinkFault("orders", 1, delay=0.5),
            LinkFault("orders", 2, drops=1, redelivery_delay=0.3),
        ),
    )
    policy = RetryPolicy(max_attempts=3, base_backoff=0.05, jitter=0.25)
    system = build(fault_plan=plan, retry_policy=policy)
    system.run()

    stats = system.stats
    print(f"faulty:     {system.check().summary()}")
    print(f"faulty maintenance ended at t={system.now:.3f}")
    print(f"injected faults: {system.fault_stats.summary()}")
    print(
        f"retries={stats.retries}  "
        f"backoff={stats.backoff_time:.3f}s  "
        f"transient failures={stats.transient_failures}"
    )
    print(
        f"quarantines={len(stats.quarantine_events)}  "
        f"resumed={stats.resumed_sources}  "
        f"deferred units={stats.deferred_units}"
    )
    print(
        f"false broken-query flags avoided={stats.false_flags_avoided}  "
        f"genuine broken-query flags={stats.genuine_broken_flags}  "
        f"corrections={stats.corrections}"
    )
    for at, source, until in stats.quarantine_events:
        print(f"  t={at:.3f}: quarantined {source!r} until t={until:.3f}")

    # ------------------------------------------------------------------
    # 3. The point: same extent, honestly larger cost.
    # ------------------------------------------------------------------
    same = sorted(system.extent().rows()) == sorted(
        baseline.extent().rows()
    )
    print(f"\nextents identical to fault-free run: {same}")
    print(f"faults made the run slower: {system.now > baseline.now}")
    assert same and system.check().consistent


if __name__ == "__main__":
    main()
